//! Durable storage behind the decided log and checkpoints.
//!
//! [`Storage`] is the write-side persistence trait the [`DecidedLog`]
//! (`crate::log`) writes through: decided batches as they are appended and
//! stable checkpoints as quorums certify them. Two backends exist:
//!
//! * [`MemStorage`] — the pre-existing behaviour: nothing is persisted and a
//!   crashed replica is reborn amnesiac (it must state-transfer everything).
//! * [`Journal`] — an append-only, segmented, CRC-framed write-ahead journal.
//!   A rebooting replica replays it back into the last stable checkpoint plus
//!   the decided suffix ([`Journal::open`] → [`Recovered`]) instead of
//!   starting empty, which is what keeps Lazarus-style continuous
//!   reconfiguration cheap once service state is no longer tiny.
//!
//! # Journal format
//!
//! A journal is a directory of segment files named `journal-<index>.seg`,
//! replayed in index order. Each segment is a sequence of CRC-framed
//! records:
//!
//! ```text
//! frame      := len:u32be  crc32:u32be  body            (crc over body)
//! body       := tag:u8  payload
//! batch      := 0x01  seq:u64be  count:u32be  request*
//! request    := client:u64be  op:u64be  len:u32be  payload  tag:32B
//! checkpoint := 0x02  seq:u64be  digest:32B  len:u64be  snapshot
//! ```
//!
//! Recovery stops at the first malformed frame (short header, impossible
//! length, CRC mismatch, unparseable body, or a checkpoint whose snapshot
//! does not hash to its recorded digest) and reports it as a *torn tail*:
//! everything before the tear is trusted, everything after is discarded.
//! After recovery the journal always appends into a **fresh** segment, so a
//! torn tail never needs in-place repair.
//!
//! When a checkpoint becomes stable the journal *compacts*: the checkpoint
//! record is written to a fresh segment and every older segment is deleted —
//! batches at or below a stable checkpoint are reconstructible from the
//! snapshot and thus dead weight.
//!
//! # Determinism
//!
//! The testbed byte-compares metrics output across runs, so nothing here
//! reports wall-clock time. Sync and compaction costs are *virtual*: a
//! deterministic function of the bytes involved (see
//! [`fsync_virtual_us`] / [`compaction_virtual_us`] /
//! [`Recovered::virtual_recovery_us`]), modelling a ~150 MB/s journal
//! device.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use bytes::Bytes;

use crate::crypto::{AuthTag, Digest};
use crate::log::Checkpoint;
use crate::messages::{Batch, Request};
use crate::obs::JournalObs;
use crate::types::{ClientId, SeqNo};

/// Write-side persistence behind the decided log.
///
/// Implementations must tolerate being called on every decided slot — the
/// journal batches O-S syncs rather than fsyncing per record.
pub trait Storage: Send + std::fmt::Debug {
    /// Persists the decided batch for `seq`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error; the log degrades to in-memory
    /// operation and counts the failure rather than panicking.
    fn append_batch(&mut self, seq: SeqNo, batch: &Batch) -> io::Result<()>;

    /// Persists a newly *stable* checkpoint plus the decided batches still
    /// retained above it, and releases everything the checkpoint supersedes
    /// (journal compaction). The suffix must be re-persisted here because
    /// compaction may destroy the segments its batches were first written
    /// to.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    fn commit_checkpoint(
        &mut self,
        checkpoint: &Checkpoint,
        suffix: &[(SeqNo, Batch)],
    ) -> io::Result<()>;

    /// Flushes buffered writes to the device.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    fn sync(&mut self) -> io::Result<()>;
}

/// The in-memory backend: persists nothing (the pre-journal behaviour).
#[derive(Debug, Default, Clone, Copy)]
pub struct MemStorage;

impl Storage for MemStorage {
    fn append_batch(&mut self, _seq: SeqNo, _batch: &Batch) -> io::Result<()> {
        Ok(())
    }

    fn commit_checkpoint(
        &mut self,
        _checkpoint: &Checkpoint,
        _suffix: &[(SeqNo, Batch)],
    ) -> io::Result<()> {
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Record tag: a decided batch.
const TAG_BATCH: u8 = 0x01;
/// Record tag: a stable checkpoint.
const TAG_CHECKPOINT: u8 = 0x02;
/// Upper bound on a single record body (guards length fields on recovery).
const MAX_RECORD: u64 = 1 << 30;

/// Virtual cost model: fixed fsync latency floor in µs.
const FSYNC_BASE_US: u64 = 120;
/// Virtual cost model: journal device throughput in bytes/µs (~150 MB/s).
const JOURNAL_BYTES_PER_US: u64 = 150;
/// Virtual cost model: fixed compaction floor in µs.
const COMPACT_BASE_US: u64 = 200;
/// Virtual cost model: reclaim throughput in bytes/µs (unlink + metadata).
const COMPACT_BYTES_PER_US: u64 = 300;
/// Virtual cost model: replay floor in µs (directory scan, file opens).
const RECOVER_BASE_US: u64 = 250;
/// Virtual cost model: replay throughput in bytes/µs (~180 MB/s read+parse).
const RECOVER_BYTES_PER_US: u64 = 180;

/// Deterministic virtual duration of syncing `bytes` to the journal device.
#[must_use]
pub fn fsync_virtual_us(bytes: u64) -> u64 {
    FSYNC_BASE_US + bytes / JOURNAL_BYTES_PER_US
}

/// Deterministic virtual duration of compacting away `reclaimed` bytes.
#[must_use]
pub fn compaction_virtual_us(reclaimed: u64) -> u64 {
    COMPACT_BASE_US + reclaimed / COMPACT_BYTES_PER_US
}

/// Configuration of a [`Journal`].
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Directory holding the segment files (created if absent).
    pub dir: PathBuf,
    /// Roll to a new segment once the current one reaches this size.
    pub segment_bytes: u64,
    /// Whether to `fsync` on [`Storage::sync`] (checkpoint commits always
    /// sync). Off is useful for mass simulation on tmpfs.
    pub fsync: bool,
}

impl JournalConfig {
    /// Defaults: 4 MiB segments, fsync on.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> JournalConfig {
        JournalConfig { dir: dir.into(), segment_bytes: 4 << 20, fsync: true }
    }
}

/// What [`Journal::open`] replayed from disk.
#[derive(Debug)]
pub struct Recovered {
    /// The newest durable stable checkpoint, if any was recorded.
    pub stable: Option<Checkpoint>,
    /// Decided batches above the stable checkpoint, by slot.
    pub entries: BTreeMap<u64, Batch>,
    /// True when replay stopped at a malformed frame (torn final write).
    pub torn_tail: bool,
    /// Valid bytes replayed across all segments.
    pub bytes_scanned: u64,
    /// Valid records applied.
    pub records: u64,
}

impl Recovered {
    /// An empty recovery (fresh journal).
    #[must_use]
    pub fn empty() -> Recovered {
        Recovered {
            stable: None,
            entries: BTreeMap::new(),
            torn_tail: false,
            bytes_scanned: 0,
            records: 0,
        }
    }

    /// True when nothing durable was found.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stable.is_none() && self.entries.is_empty()
    }

    /// Deterministic virtual duration of this replay (drives the testbed's
    /// `bft_recovery_duration_us` gauge — never wall time).
    #[must_use]
    pub fn virtual_recovery_us(&self) -> u64 {
        RECOVER_BASE_US + self.bytes_scanned / RECOVER_BYTES_PER_US
    }
}

/// The append-only segmented journal backend.
///
/// See the module docs for the on-disk format; construct via
/// [`Journal::open`], which also performs recovery.
#[derive(Debug)]
pub struct Journal {
    cfg: JournalConfig,
    /// Currently open segment, if any (opened lazily on first write).
    file: Option<File>,
    /// Index the *next* created segment will use.
    next_index: u64,
    /// Indices of live segment files, ascending (last = the open one).
    segments: Vec<u64>,
    /// Bytes written to the open segment.
    seg_len: u64,
    /// Bytes written since the last sync.
    unsynced: u64,
    obs: Option<JournalObs>,
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("journal-{index:08}.seg"))
}

fn segment_index(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("journal-")?.strip_suffix(".seg")?;
    rest.parse().ok()
}

/// Sorted indices of the segment files present in `dir`.
fn scan_segments(dir: &Path) -> io::Result<Vec<u64>> {
    let mut found = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(idx) = entry.file_name().to_str().and_then(segment_index) {
            found.push(idx);
        }
    }
    found.sort_unstable();
    Ok(found)
}

impl Journal {
    /// Opens (creating if needed) the journal at `cfg.dir` and replays it.
    ///
    /// Appends after recovery always go to a fresh segment, so a torn tail
    /// in the old ones is never extended.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and read errors. A *torn* journal is
    /// not an error — it is reported via [`Recovered::torn_tail`].
    pub fn open(cfg: JournalConfig) -> io::Result<(Journal, Recovered)> {
        fs::create_dir_all(&cfg.dir)?;
        let segments = scan_segments(&cfg.dir)?;
        let mut recovered = Recovered::empty();
        'segments: for &idx in &segments {
            let data = fs::read(segment_path(&cfg.dir, idx))?;
            let mut off = 0usize;
            while off < data.len() {
                match decode_frame(&data[off..]) {
                    Some((record, consumed)) => {
                        apply_record(&mut recovered, record);
                        recovered.records += 1;
                        recovered.bytes_scanned += consumed as u64;
                        off += consumed;
                    }
                    None => {
                        // Malformed frame: the rest of *this segment* is an
                        // untrusted tail (torn final write or corruption).
                        // Later segments were started fresh after the torn
                        // one was recovered, so their replay continues.
                        recovered.torn_tail = true;
                        continue 'segments;
                    }
                }
            }
        }
        if let Some(stable) = &recovered.stable {
            let floor = stable.seq.0;
            recovered.entries.retain(|&s, _| s > floor);
        }
        let next_index = segments.last().map_or(0, |&i| i + 1);
        let journal =
            Journal { cfg, file: None, next_index, segments, seg_len: 0, unsynced: 0, obs: None };
        Ok((journal, recovered))
    }

    /// Attaches metric handles (fsync / compaction histograms).
    pub fn attach_obs(&mut self, obs: JournalObs) {
        self.obs = Some(obs);
    }

    /// Number of live segment files.
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The journal directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.cfg.dir
    }

    /// Rolls to a brand-new segment (the current one, if any, is synced
    /// first and left behind).
    fn roll(&mut self) -> io::Result<()> {
        self.sync()?;
        let path = segment_path(&self.cfg.dir, self.next_index);
        let file = OpenOptions::new().create_new(true).append(true).open(path)?;
        self.file = Some(file);
        self.segments.push(self.next_index);
        self.next_index += 1;
        self.seg_len = 0;
        Ok(())
    }

    fn write_record(&mut self, body: &[u8]) -> io::Result<()> {
        if self.file.is_none() || self.seg_len >= self.cfg.segment_bytes {
            self.roll()?;
        }
        let frame = encode_frame(body);
        match self.file.as_mut() {
            Some(file) => file.write_all(&frame)?,
            None => return Err(io::Error::other("journal segment failed to open")),
        }
        self.seg_len += frame.len() as u64;
        self.unsynced += frame.len() as u64;
        Ok(())
    }
}

impl Storage for Journal {
    fn append_batch(&mut self, seq: SeqNo, batch: &Batch) -> io::Result<()> {
        self.write_record(&encode_batch_body(seq, batch))
    }

    fn commit_checkpoint(
        &mut self,
        checkpoint: &Checkpoint,
        suffix: &[(SeqNo, Batch)],
    ) -> io::Result<()> {
        // The checkpoint starts a fresh segment so compaction can delete
        // every older one wholesale. Batches decided after the checkpoint
        // slot may live in those older segments, so they are re-persisted
        // into the fresh segment alongside it.
        self.file = None;
        self.write_record(&encode_checkpoint_body(checkpoint))?;
        for (seq, batch) in suffix {
            self.write_record(&encode_batch_body(*seq, batch))?;
        }
        self.sync()?;
        let keep = self.segments.last().copied();
        let mut reclaimed = 0u64;
        let stale: Vec<u64> = self.segments.iter().copied().filter(|&i| Some(i) != keep).collect();
        for idx in stale {
            let path = segment_path(&self.cfg.dir, idx);
            reclaimed += fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            fs::remove_file(&path)?;
        }
        self.segments.retain(|&i| Some(i) == keep);
        if let Some(obs) = &self.obs {
            obs.compaction(compaction_virtual_us(reclaimed));
        }
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.unsynced == 0 {
            return Ok(());
        }
        if self.cfg.fsync {
            if let Some(file) = self.file.as_ref() {
                file.sync_data()?;
            }
        }
        if let Some(obs) = &self.obs {
            obs.fsync(fsync_virtual_us(self.unsynced));
        }
        self.unsynced = 0;
        Ok(())
    }
}

/// Simulates a torn final write: truncates up to `max_bytes` from the end
/// of the newest non-empty segment in `dir`. Returns the bytes torn off
/// (0 when the journal is empty).
///
/// # Errors
///
/// Propagates filesystem errors (a missing directory tears nothing).
pub fn tear_tail(dir: &Path, max_bytes: u64) -> io::Result<u64> {
    if !dir.exists() {
        return Ok(0);
    }
    let segments = scan_segments(dir)?;
    for &idx in segments.iter().rev() {
        let path = segment_path(dir, idx);
        let len = fs::metadata(&path)?.len();
        if len == 0 {
            continue;
        }
        let torn = max_bytes.min(len);
        let file = OpenOptions::new().write(true).open(&path)?;
        file.set_len(len - torn)?;
        file.sync_data()?;
        return Ok(torn);
    }
    Ok(0)
}

// ---------------------------------------------------------------------------
// Record encoding / decoding
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3, reflected) over `data`.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

fn encode_frame(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(&crc32(body).to_be_bytes());
    out.extend_from_slice(body);
    out
}

fn encode_batch_body(seq: SeqNo, batch: &Batch) -> Vec<u8> {
    let requests = batch.requests();
    let payload: usize = requests.iter().map(|r| 52 + r.payload.len()).sum();
    let mut out = Vec::with_capacity(13 + payload);
    out.push(TAG_BATCH);
    out.extend_from_slice(&seq.0.to_be_bytes());
    out.extend_from_slice(&(requests.len() as u32).to_be_bytes());
    for r in requests {
        out.extend_from_slice(&r.client.0.to_be_bytes());
        out.extend_from_slice(&r.op.to_be_bytes());
        out.extend_from_slice(&(r.payload.len() as u32).to_be_bytes());
        out.extend_from_slice(&r.payload);
        out.extend_from_slice(&r.tag.0);
    }
    out
}

fn encode_checkpoint_body(checkpoint: &Checkpoint) -> Vec<u8> {
    let mut out = Vec::with_capacity(49 + checkpoint.snapshot.len());
    out.push(TAG_CHECKPOINT);
    out.extend_from_slice(&checkpoint.seq.0.to_be_bytes());
    out.extend_from_slice(&checkpoint.digest.0);
    out.extend_from_slice(&(checkpoint.snapshot.len() as u64).to_be_bytes());
    out.extend_from_slice(&checkpoint.snapshot);
    out
}

/// A decoded journal record.
enum Record {
    Batch(SeqNo, Batch),
    Checkpoint(Checkpoint),
}

/// A bounds-checked little parse cursor (recovery must never panic on
/// corrupt input).
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        let s = self.take(8)?;
        Some(u64::from_be_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    fn exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Decodes one frame at the start of `data`; `Some((record, consumed))` on
/// success, `None` for any malformation (the torn-tail signal).
fn decode_frame(data: &[u8]) -> Option<(Record, usize)> {
    if data.len() < 8 {
        return None;
    }
    let len = u32::from_be_bytes([data[0], data[1], data[2], data[3]]) as usize;
    let crc = u32::from_be_bytes([data[4], data[5], data[6], data[7]]);
    if len == 0 || len as u64 > MAX_RECORD || data.len() < 8 + len {
        return None;
    }
    let body = &data[8..8 + len];
    if crc32(body) != crc {
        return None;
    }
    let record = decode_body(body)?;
    Some((record, 8 + len))
}

fn decode_body(body: &[u8]) -> Option<Record> {
    let mut cur = Cursor::new(body);
    match cur.u8()? {
        TAG_BATCH => {
            let seq = SeqNo(cur.u64()?);
            let count = cur.u32()? as usize;
            let mut requests = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                let client = ClientId(cur.u64()?);
                let op = cur.u64()?;
                let plen = cur.u32()? as usize;
                let payload = Bytes::copy_from_slice(cur.take(plen)?);
                let mut tag = [0u8; 32];
                tag.copy_from_slice(cur.take(32)?);
                requests.push(Request { client, op, payload, tag: AuthTag(tag) });
            }
            cur.exhausted().then(|| Record::Batch(seq, Batch::new(requests)))
        }
        TAG_CHECKPOINT => {
            let seq = SeqNo(cur.u64()?);
            let mut digest = [0u8; 32];
            digest.copy_from_slice(cur.take(32)?);
            let digest = Digest(digest);
            let slen = cur.u64()?;
            if slen > MAX_RECORD {
                return None;
            }
            let snapshot = Bytes::copy_from_slice(cur.take(slen as usize)?);
            if !cur.exhausted() || Digest::of(&snapshot) != digest {
                // A CRC-valid checkpoint whose snapshot does not hash to its
                // recorded digest was written wrong — untrusted tail.
                return None;
            }
            Some(Record::Checkpoint(Checkpoint { seq, snapshot, digest }))
        }
        _ => None,
    }
}

fn apply_record(recovered: &mut Recovered, record: Record) {
    match record {
        Record::Batch(seq, batch) => {
            // Idempotent: a duplicated segment re-inserts identical batches.
            recovered.entries.insert(seq.0, batch);
        }
        Record::Checkpoint(checkpoint) => {
            let newer = recovered.stable.as_ref().is_none_or(|s| checkpoint.seq >= s.seq);
            if newer {
                let floor = checkpoint.seq.0;
                recovered.entries.retain(|&s, _| s > floor);
                recovered.stable = Some(checkpoint);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::Keyring;
    use crate::crypto::Principal;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lazarus_journal_{}_{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn request(client: u64, op: u64, payload: &[u8]) -> Request {
        let ring = Keyring::new(b"storage-test");
        Request {
            client: ClientId(client),
            op,
            payload: Bytes::copy_from_slice(payload),
            tag: ring.sign(
                Principal::Client(client),
                &Request::auth_bytes(ClientId(client), op, payload),
            ),
        }
    }

    fn batch(seed: u64) -> Batch {
        Batch::new(vec![
            request(seed, seed, &seed.to_be_bytes()),
            request(seed + 1, seed, b"payload"),
        ])
    }

    fn checkpoint(seq: u64, state: &[u8]) -> Checkpoint {
        let snapshot = Bytes::copy_from_slice(state);
        let digest = Digest::of(&snapshot);
        Checkpoint { seq: SeqNo(seq), snapshot, digest }
    }

    #[test]
    fn empty_journal_recovers_empty() {
        let dir = temp_dir("empty");
        let (journal, recovered) = Journal::open(JournalConfig::new(&dir)).expect("open");
        assert!(recovered.is_empty());
        assert!(!recovered.torn_tail);
        assert_eq!(recovered.records, 0);
        assert_eq!(journal.segment_count(), 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batches_and_checkpoint_round_trip() {
        let dir = temp_dir("roundtrip");
        let cfg = JournalConfig { fsync: false, ..JournalConfig::new(&dir) };
        {
            let (mut journal, _) = Journal::open(cfg.clone()).expect("open");
            for s in 1..=5u64 {
                journal.append_batch(SeqNo(s), &batch(s)).expect("append");
            }
            journal
                .commit_checkpoint(
                    &checkpoint(3, b"state@3"),
                    &[(SeqNo(4), batch(4)), (SeqNo(5), batch(5))],
                )
                .expect("checkpoint");
            for s in 4..=6u64 {
                journal.append_batch(SeqNo(s), &batch(s)).expect("append");
            }
            journal.sync().expect("sync");
        }
        let (_, recovered) = Journal::open(cfg).expect("reopen");
        assert!(!recovered.torn_tail);
        let stable = recovered.stable.expect("stable checkpoint");
        assert_eq!(stable.seq, SeqNo(3));
        assert_eq!(&stable.snapshot[..], b"state@3");
        // Entries at or below the checkpoint are gone; the suffix survives.
        assert_eq!(recovered.entries.keys().copied().collect::<Vec<_>>(), vec![4, 5, 6]);
        assert_eq!(recovered.entries[&4], batch(4));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_deletes_older_segments() {
        let dir = temp_dir("compact");
        let cfg = JournalConfig { segment_bytes: 64, fsync: false, ..JournalConfig::new(&dir) };
        let (mut journal, _) = Journal::open(cfg).expect("open");
        for s in 1..=20u64 {
            journal.append_batch(SeqNo(s), &batch(s)).expect("append");
        }
        assert!(journal.segment_count() > 1, "tiny segments must have rolled");
        journal.commit_checkpoint(&checkpoint(20, b"state@20"), &[]).expect("checkpoint");
        assert_eq!(journal.segment_count(), 1, "compaction keeps only the checkpoint segment");
        let on_disk = scan_segments(&dir).expect("scan");
        assert_eq!(on_disk.len(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_detected_and_prefix_survives() {
        let dir = temp_dir("torn");
        let cfg = JournalConfig { fsync: false, ..JournalConfig::new(&dir) };
        {
            let (mut journal, _) = Journal::open(cfg.clone()).expect("open");
            for s in 1..=4u64 {
                journal.append_batch(SeqNo(s), &batch(s)).expect("append");
            }
            journal.sync().expect("sync");
        }
        let torn = tear_tail(&dir, 5).expect("tear");
        assert_eq!(torn, 5);
        let (_, recovered) = Journal::open(cfg).expect("reopen");
        assert!(recovered.torn_tail);
        assert_eq!(recovered.entries.keys().copied().collect::<Vec<_>>(), vec![1, 2, 3]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_crc_ends_replay() {
        let dir = temp_dir("crc");
        let cfg = JournalConfig { fsync: false, ..JournalConfig::new(&dir) };
        {
            let (mut journal, _) = Journal::open(cfg.clone()).expect("open");
            for s in 1..=3u64 {
                journal.append_batch(SeqNo(s), &batch(s)).expect("append");
            }
            journal.sync().expect("sync");
        }
        // Flip one byte in the middle record's body.
        let seg = segment_path(&dir, 0);
        let mut data = fs::read(&seg).expect("read");
        let first_len = u32::from_be_bytes([data[0], data[1], data[2], data[3]]) as usize;
        let second_body = 8 + first_len + 8;
        data[second_body + 3] ^= 0xFF;
        fs::write(&seg, &data).expect("write back");
        let (_, recovered) = Journal::open(cfg).expect("reopen");
        assert!(recovered.torn_tail);
        assert_eq!(recovered.entries.keys().copied().collect::<Vec<_>>(), vec![1]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_segment_is_idempotent() {
        let dir = temp_dir("dup");
        let cfg = JournalConfig { fsync: false, ..JournalConfig::new(&dir) };
        {
            let (mut journal, _) = Journal::open(cfg.clone()).expect("open");
            for s in 1..=3u64 {
                journal.append_batch(SeqNo(s), &batch(s)).expect("append");
            }
            journal.sync().expect("sync");
        }
        // An operator restored a backup alongside the original: the same
        // records replay twice.
        fs::copy(segment_path(&dir, 0), segment_path(&dir, 7)).expect("copy");
        let (journal, recovered) = Journal::open(cfg).expect("reopen");
        assert!(!recovered.torn_tail);
        assert_eq!(recovered.entries.keys().copied().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(recovered.entries[&2], batch(2));
        assert_eq!(journal.segment_count(), 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_with_wrong_digest_is_untrusted() {
        let dir = temp_dir("badck");
        fs::create_dir_all(&dir).expect("mkdir");
        // Hand-craft a checkpoint record whose digest does not match.
        let mut body = vec![TAG_CHECKPOINT];
        body.extend_from_slice(&9u64.to_be_bytes());
        body.extend_from_slice(&Digest::of(b"something else").0);
        body.extend_from_slice(&5u64.to_be_bytes());
        body.extend_from_slice(b"state");
        fs::write(segment_path(&dir, 0), encode_frame(&body)).expect("write");
        let (_, recovered) = Journal::open(JournalConfig::new(&dir)).expect("open");
        assert!(recovered.torn_tail);
        assert!(recovered.stable.is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn appends_after_recovery_go_to_a_fresh_segment() {
        let dir = temp_dir("fresh");
        let cfg = JournalConfig { fsync: false, ..JournalConfig::new(&dir) };
        {
            let (mut journal, _) = Journal::open(cfg.clone()).expect("open");
            journal.append_batch(SeqNo(1), &batch(1)).expect("append");
            journal.sync().expect("sync");
        }
        tear_tail(&dir, 3).expect("tear");
        {
            let (mut journal, recovered) = Journal::open(cfg.clone()).expect("reopen");
            assert!(recovered.torn_tail);
            journal.append_batch(SeqNo(2), &batch(2)).expect("append");
            journal.sync().expect("sync");
        }
        // The torn segment was not extended; the new record lives in a new
        // file and replays (the torn record stays lost).
        let (_, recovered) = Journal::open(cfg).expect("re-reopen");
        assert_eq!(recovered.entries.keys().copied().collect::<Vec<_>>(), vec![2]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    proptest::proptest! {
        /// Satellite: recovery never panics and always yields a valid
        /// prefix, whatever byte the tail is cut at — torn final record,
        /// torn frame header, or a clean boundary.
        #[test]
        fn recovery_survives_any_truncation(
            n_batches in 1usize..6,
            with_checkpoint in 0u8..2,
            cut_back in 0u64..400,
        ) {
            let with_checkpoint = with_checkpoint == 1;
            let dir = temp_dir("prop_trunc");
            let cfg = JournalConfig { fsync: false, ..JournalConfig::new(&dir) };
            {
                let (mut journal, _) = Journal::open(cfg.clone()).expect("open");
                for s in 1..=n_batches as u64 {
                    journal.append_batch(SeqNo(s), &batch(s)).expect("append");
                }
                if with_checkpoint {
                    let suffix: Vec<(SeqNo, Batch)> =
                        (2..=n_batches as u64).map(|s| (SeqNo(s), batch(s))).collect();
                    journal.commit_checkpoint(&checkpoint(1, b"s@1"), &suffix).expect("ck");
                }
                journal.sync().expect("sync");
            }
            tear_tail(&dir, cut_back).expect("tear");
            let (_, recovered) = Journal::open(cfg).expect("reopen");
            // Whatever survived is a prefix of what was written, with
            // correct content per slot.
            for (&seq, b) in &recovered.entries {
                proptest::prop_assert!(seq >= 1 && seq <= n_batches as u64);
                proptest::prop_assert_eq!(b.clone(), batch(seq));
            }
            if let Some(stable) = &recovered.stable {
                proptest::prop_assert_eq!(stable.seq, SeqNo(1));
                proptest::prop_assert_eq!(Digest::of(&stable.snapshot), stable.digest);
            }
            fs::remove_dir_all(&dir).ok();
        }

        /// Satellite: replaying a journal with an arbitrarily duplicated
        /// segment recovers exactly the same state as the original.
        #[test]
        fn duplicated_segments_change_nothing(
            n_batches in 1usize..6,
            dup_at in 10u64..20,
        ) {
            let dir = temp_dir("prop_dup");
            let cfg = JournalConfig { fsync: false, ..JournalConfig::new(&dir) };
            {
                let (mut journal, _) = Journal::open(cfg.clone()).expect("open");
                for s in 1..=n_batches as u64 {
                    journal.append_batch(SeqNo(s), &batch(s)).expect("append");
                }
                journal.sync().expect("sync");
            }
            let (_, base) = Journal::open(cfg.clone()).expect("reopen");
            fs::copy(segment_path(&dir, 0), segment_path(&dir, dup_at)).expect("copy");
            let (_, doubled) = Journal::open(cfg).expect("reopen dup");
            proptest::prop_assert_eq!(!doubled.torn_tail, true);
            proptest::prop_assert_eq!(
                base.entries.keys().copied().collect::<Vec<_>>(),
                doubled.entries.keys().copied().collect::<Vec<_>>()
            );
            fs::remove_dir_all(&dir).ok();
        }
    }
}
