//! The decided log and checkpointing.
//!
//! Replicas append decided batches in slot order, periodically snapshot the
//! service, gather `2f + 1` matching CHECKPOINT messages to make a
//! checkpoint *stable*, and trim the log below it (paper §7.3 measures the
//! throughput dips these checkpoints and the ensuing state transfers cause).

use std::collections::BTreeMap;
use std::fmt;

use bytes::Bytes;

use crate::crypto::Digest;
use crate::messages::Batch;
use crate::storage::{MemStorage, Recovered, Storage};
use crate::types::{ReplicaId, SeqNo};

/// A service snapshot pinned to a slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Last slot reflected in the snapshot.
    pub seq: SeqNo,
    /// Snapshot bytes.
    pub snapshot: Bytes,
    /// Snapshot digest.
    pub digest: Digest,
}

/// Why a transferred checkpoint was refused by [`DecidedLog::install`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstallError {
    /// The snapshot bytes do not hash to the checkpoint digest.
    SnapshotDigest,
    /// The suffix is not strictly ordered above the checkpoint slot.
    SuffixOrder,
}

impl InstallError {
    /// The rejection-reason label for `bft_rejected_messages_total`.
    #[must_use]
    pub fn reason(&self) -> &'static str {
        match self {
            InstallError::SnapshotDigest => "bad-snapshot",
            InstallError::SuffixOrder => "bad-suffix",
        }
    }
}

impl fmt::Display for InstallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstallError::SnapshotDigest => {
                write!(f, "snapshot bytes do not match the checkpoint digest")
            }
            InstallError::SuffixOrder => {
                write!(f, "suffix slots not strictly ordered above the checkpoint")
            }
        }
    }
}

/// The decided log with checkpoint management, writing through to a
/// pluggable [`Storage`] backend.
#[derive(Debug)]
pub struct DecidedLog {
    /// Decided batches above the stable checkpoint.
    entries: BTreeMap<u64, Batch>,
    /// The latest stable checkpoint (proven by a quorum).
    stable: Checkpoint,
    /// A local checkpoint awaiting quorum proof.
    pending: Option<Checkpoint>,
    /// CHECKPOINT votes per (seq, digest).
    votes: BTreeMap<(u64, Digest), Vec<ReplicaId>>,
    /// Snapshot cadence in slots.
    period: u64,
    /// Durability backend ([`MemStorage`] when nothing should persist).
    storage: Box<dyn Storage>,
    /// Write failures absorbed (the log degrades to in-memory, it never
    /// panics on a sick disk).
    storage_errors: u64,
}

impl DecidedLog {
    /// A log starting from genesis (`seq` −, an empty snapshot) with the
    /// given checkpoint period, persisting nothing.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: u64, genesis_snapshot: Bytes) -> DecidedLog {
        DecidedLog::with_storage(period, genesis_snapshot, Box::new(MemStorage))
    }

    /// A log starting from genesis that writes through to `storage`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn with_storage(
        period: u64,
        genesis_snapshot: Bytes,
        storage: Box<dyn Storage>,
    ) -> DecidedLog {
        assert!(period > 0, "checkpoint period must be positive");
        let digest = Digest::of(&genesis_snapshot);
        DecidedLog {
            entries: BTreeMap::new(),
            stable: Checkpoint { seq: SeqNo(0), snapshot: genesis_snapshot, digest },
            pending: None,
            votes: BTreeMap::new(),
            period,
            storage,
            storage_errors: 0,
        }
    }

    /// Rebuilds a log from a journal replay: the recovered stable
    /// checkpoint (genesis when none was durable) plus the decided suffix.
    /// Nothing is re-written to `storage` — the records are already there.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn from_recovered(
        period: u64,
        genesis_snapshot: Bytes,
        storage: Box<dyn Storage>,
        recovered: Recovered,
    ) -> DecidedLog {
        assert!(period > 0, "checkpoint period must be positive");
        let stable = recovered.stable.unwrap_or_else(|| {
            let digest = Digest::of(&genesis_snapshot);
            Checkpoint { seq: SeqNo(0), snapshot: genesis_snapshot, digest }
        });
        let floor = stable.seq.0;
        let entries = recovered.entries.into_iter().filter(|&(s, _)| s > floor).collect();
        DecidedLog {
            entries,
            stable,
            pending: None,
            votes: BTreeMap::new(),
            period,
            storage,
            storage_errors: 0,
        }
    }

    /// Write failures the storage backend has absorbed so far.
    pub fn storage_errors(&self) -> u64 {
        self.storage_errors
    }

    fn persist_batch(&mut self, seq: SeqNo, batch: &Batch) {
        if self.storage.append_batch(seq, batch).is_err() {
            self.storage_errors += 1;
        }
    }

    fn persist_stable(&mut self) {
        let checkpoint = self.stable.clone();
        // Batches retained above the checkpoint ride along: compaction
        // destroys the segments they were first journaled into.
        let suffix = self.suffix(checkpoint.seq);
        if self.storage.commit_checkpoint(&checkpoint, &suffix).is_err() {
            self.storage_errors += 1;
        }
    }

    /// The checkpoint cadence.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// The latest stable checkpoint.
    pub fn stable_checkpoint(&self) -> &Checkpoint {
        &self.stable
    }

    /// The local checkpoint still waiting for quorum, if any.
    pub fn pending_checkpoint(&self) -> Option<&Checkpoint> {
        self.pending.as_ref()
    }

    /// Appends a decided batch at `seq`. Returns `true` when the slot
    /// completes a checkpoint period (the caller should snapshot the
    /// service and call [`local_checkpoint`](Self::local_checkpoint)).
    pub fn append(&mut self, seq: SeqNo, batch: Batch) -> bool {
        self.persist_batch(seq, &batch);
        self.entries.insert(seq.0, batch);
        seq.0.is_multiple_of(self.period)
    }

    /// Number of batches retained above the stable checkpoint.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no batches are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The decided batch at `seq`, if retained.
    pub fn get(&self, seq: SeqNo) -> Option<&Batch> {
        self.entries.get(&seq.0)
    }

    /// Decided batches strictly after `from`, in order.
    pub fn suffix(&self, from: SeqNo) -> Vec<(SeqNo, Batch)> {
        self.entries.range((from.0 + 1)..).map(|(&s, b)| (SeqNo(s), b.clone())).collect()
    }

    /// Records the local snapshot for `seq` and returns its digest (to be
    /// broadcast in a CHECKPOINT message).
    pub fn local_checkpoint(&mut self, seq: SeqNo, snapshot: Bytes) -> Digest {
        let digest = Digest::of(&snapshot);
        self.pending = Some(Checkpoint { seq, snapshot, digest });
        digest
    }

    /// Registers a CHECKPOINT vote. When `quorum` votes agree on the same
    /// `(seq, digest)` *and* it matches our local pending (or stable)
    /// snapshot, the checkpoint becomes stable, the log is trimmed, and the
    /// newly stable slot is returned.
    pub fn on_checkpoint_vote(
        &mut self,
        from: ReplicaId,
        seq: SeqNo,
        digest: Digest,
        quorum: usize,
    ) -> Option<SeqNo> {
        if seq <= self.stable.seq {
            return None;
        }
        let voters = self.votes.entry((seq.0, digest)).or_default();
        if !voters.contains(&from) {
            voters.push(from);
        }
        if voters.len() < quorum {
            return None;
        }
        let matches_local =
            self.pending.as_ref().is_some_and(|p| p.seq == seq && p.digest == digest);
        if !matches_local {
            // Quorum agrees on a snapshot we do not hold — the caller must
            // state-transfer. Keep the votes so it can re-check later.
            return None;
        }
        let pending = self.pending.take().expect("checked above");
        self.stable = pending;
        self.persist_stable();
        self.trim();
        Some(seq)
    }

    /// Installs a checkpoint obtained via state transfer and the decided
    /// suffix after it — after verifying it, rather than trusting the
    /// transfer path blindly: the snapshot must hash to the checkpoint
    /// digest and the suffix must be strictly ordered above the checkpoint
    /// slot. On a mismatch nothing changes and the caller counts the
    /// rejection ([`InstallError::reason`]).
    ///
    /// # Errors
    ///
    /// [`InstallError`] describing the verification failure.
    pub fn install(
        &mut self,
        checkpoint: Checkpoint,
        suffix: Vec<(SeqNo, Batch)>,
    ) -> Result<(), InstallError> {
        if Digest::of(&checkpoint.snapshot) != checkpoint.digest {
            return Err(InstallError::SnapshotDigest);
        }
        let mut prev = checkpoint.seq;
        for (seq, _) in &suffix {
            if *seq <= prev {
                return Err(InstallError::SuffixOrder);
            }
            prev = *seq;
        }
        self.stable = checkpoint;
        self.pending = None;
        self.entries.clear();
        self.persist_stable();
        for (seq, batch) in suffix {
            self.persist_batch(seq, &batch);
            self.entries.insert(seq.0, batch);
        }
        self.trim();
        Ok(())
    }

    fn trim(&mut self) {
        let stable = self.stable.seq.0;
        self.entries.retain(|&s, _| s > stable);
        self.votes.retain(|&(s, _), _| s > stable);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> Batch {
        Batch::default()
    }

    #[test]
    fn append_flags_checkpoint_slots() {
        let mut log = DecidedLog::new(5, Bytes::new());
        assert!(!log.append(SeqNo(1), batch()));
        assert!(!log.append(SeqNo(4), batch()));
        assert!(log.append(SeqNo(5), batch()));
        assert!(log.append(SeqNo(10), batch()));
        assert_eq!(log.len(), 4);
    }

    #[test]
    fn checkpoint_becomes_stable_with_quorum_and_trims() {
        let mut log = DecidedLog::new(2, Bytes::new());
        for s in 1..=4u64 {
            log.append(SeqNo(s), batch());
        }
        let snap = Bytes::from_static(b"state@2");
        let digest = log.local_checkpoint(SeqNo(2), snap);
        assert!(log.pending_checkpoint().is_some());
        assert_eq!(log.on_checkpoint_vote(ReplicaId(0), SeqNo(2), digest, 3), None);
        assert_eq!(log.on_checkpoint_vote(ReplicaId(1), SeqNo(2), digest, 3), None);
        // duplicate vote does not count twice
        assert_eq!(log.on_checkpoint_vote(ReplicaId(1), SeqNo(2), digest, 3), None);
        assert_eq!(log.on_checkpoint_vote(ReplicaId(2), SeqNo(2), digest, 3), Some(SeqNo(2)));
        assert_eq!(log.stable_checkpoint().seq, SeqNo(2));
        // slots 1..=2 trimmed, 3..=4 retained
        assert!(log.get(SeqNo(2)).is_none());
        assert!(log.get(SeqNo(3)).is_some());
        assert_eq!(log.len(), 2);
        assert!(log.pending_checkpoint().is_none());
    }

    #[test]
    fn divergent_digest_never_stabilizes_locally() {
        let mut log = DecidedLog::new(2, Bytes::new());
        log.append(SeqNo(2), batch());
        log.local_checkpoint(SeqNo(2), Bytes::from_static(b"mine"));
        let other = Digest::of(b"theirs");
        for r in 0..4 {
            assert_eq!(log.on_checkpoint_vote(ReplicaId(r), SeqNo(2), other, 3), None);
        }
        // our stable checkpoint unchanged — state transfer must resolve it
        assert_eq!(log.stable_checkpoint().seq, SeqNo(0));
    }

    #[test]
    fn stale_votes_are_ignored() {
        let mut log = DecidedLog::new(2, Bytes::new());
        log.append(SeqNo(2), batch());
        let d = log.local_checkpoint(SeqNo(2), Bytes::from_static(b"s"));
        for r in 0..3 {
            log.on_checkpoint_vote(ReplicaId(r), SeqNo(2), d, 3);
        }
        // votes for an already-stable or older seq do nothing
        assert_eq!(log.on_checkpoint_vote(ReplicaId(3), SeqNo(2), d, 3), None);
        assert_eq!(log.on_checkpoint_vote(ReplicaId(3), SeqNo(1), d, 3), None);
    }

    #[test]
    fn suffix_and_install() {
        let mut log = DecidedLog::new(100, Bytes::new());
        for s in 1..=5u64 {
            log.append(SeqNo(s), batch());
        }
        let suffix = log.suffix(SeqNo(3));
        assert_eq!(suffix.iter().map(|(s, _)| s.0).collect::<Vec<_>>(), vec![4, 5]);

        let ck = Checkpoint {
            seq: SeqNo(10),
            snapshot: Bytes::from_static(b"transferred"),
            digest: Digest::of(b"transferred"),
        };
        log.install(ck.clone(), vec![(SeqNo(11), batch()), (SeqNo(12), batch())])
            .expect("verified install");
        assert_eq!(log.stable_checkpoint().seq, SeqNo(10));
        assert_eq!(log.len(), 2);
        assert!(log.get(SeqNo(11)).is_some());
        assert!(log.get(SeqNo(5)).is_none());
    }

    #[test]
    fn install_rejects_forged_snapshot_and_disordered_suffix() {
        let mut log = DecidedLog::new(100, Bytes::new());
        log.append(SeqNo(1), batch());
        let before = log.stable_checkpoint().clone();
        // Snapshot bytes that do not hash to the claimed digest.
        let forged = Checkpoint {
            seq: SeqNo(10),
            snapshot: Bytes::from_static(b"evil"),
            digest: Digest::of(b"claimed"),
        };
        assert_eq!(log.install(forged, vec![]), Err(InstallError::SnapshotDigest));
        assert_eq!(InstallError::SnapshotDigest.reason(), "bad-snapshot");
        // A valid checkpoint but a suffix below / repeating it.
        let ck = Checkpoint {
            seq: SeqNo(10),
            snapshot: Bytes::from_static(b"ok"),
            digest: Digest::of(b"ok"),
        };
        assert_eq!(
            log.install(ck.clone(), vec![(SeqNo(10), batch())]),
            Err(InstallError::SuffixOrder)
        );
        assert_eq!(
            log.install(ck, vec![(SeqNo(12), batch()), (SeqNo(11), batch())]),
            Err(InstallError::SuffixOrder)
        );
        assert_eq!(InstallError::SuffixOrder.reason(), "bad-suffix");
        // Nothing changed: the refused transfers left the log intact.
        assert_eq!(log.stable_checkpoint(), &before);
        assert!(log.get(SeqNo(1)).is_some());
    }

    #[test]
    fn journal_backed_log_survives_reopen() {
        use crate::storage::{Journal, JournalConfig};
        let dir = std::env::temp_dir().join(format!("lazarus_log_journal_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = JournalConfig { fsync: false, ..JournalConfig::new(&dir) };
        {
            let (journal, recovered) = Journal::open(cfg.clone()).expect("open");
            assert!(recovered.is_empty());
            let mut log = DecidedLog::from_recovered(2, Bytes::new(), Box::new(journal), recovered);
            for s in 1..=3u64 {
                log.append(SeqNo(s), batch());
            }
            let snap = Bytes::from_static(b"state@2");
            let d = log.local_checkpoint(SeqNo(2), snap);
            for r in 0..3 {
                log.on_checkpoint_vote(ReplicaId(r), SeqNo(2), d, 3);
            }
            assert_eq!(log.stable_checkpoint().seq, SeqNo(2));
            assert_eq!(log.storage_errors(), 0);
        }
        // A "rebooted" log replays the journal: stable checkpoint at 2, the
        // suffix slot 3 retained.
        let (journal, recovered) = Journal::open(cfg).expect("reopen");
        assert!(!recovered.torn_tail);
        let log = DecidedLog::from_recovered(2, Bytes::new(), Box::new(journal), recovered);
        assert_eq!(log.stable_checkpoint().seq, SeqNo(2));
        assert_eq!(&log.stable_checkpoint().snapshot[..], b"state@2");
        assert_eq!(log.len(), 1);
        assert!(log.get(SeqNo(3)).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_panics() {
        DecidedLog::new(0, Bytes::new());
    }
}
