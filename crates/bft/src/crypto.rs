//! Cryptographic primitives for the replication library.
//!
//! A from-scratch SHA-256 (FIPS 180-4) plus HMAC-SHA256, used for message
//! digests and authentication. Key distribution is simulated: every
//! principal's MAC key is derived from a deployment-wide master secret and
//! the principal's identity, which models the pairwise-shared-key setup of
//! BFT-SMaRt without a PKI. The controller ("trusted third party") holds a
//! dedicated key for signing reconfiguration commands.

use std::fmt;

/// A 32-byte SHA-256 digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest (placeholder for "no value").
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Digest of a byte string.
    pub fn of(data: &[u8]) -> Digest {
        Digest(sha256(data))
    }

    /// Digest of the concatenation of several byte strings, length-framed so
    /// `("ab", "c")` and `("a", "bc")` differ.
    pub fn of_parts(parts: &[&[u8]]) -> Digest {
        let mut hasher = Sha256::new();
        for p in parts {
            hasher.update(&(p.len() as u64).to_be_bytes());
            hasher.update(p);
        }
        Digest(hasher.finalize())
    }

    /// Hex rendering of the first 8 bytes (for logs).
    pub fn short_hex(&self) -> String {
        let mut buf = [0u8; 16];
        hex_encode(&self.0[..8], &mut buf);
        str::from_utf8(&buf).expect("hex is ASCII").to_owned()
    }
}

const HEX_DIGITS: &[u8; 16] = b"0123456789abcdef";

/// Encodes `bytes` as lowercase hex into `out` (`out.len() == 2 * bytes.len()`).
fn hex_encode(bytes: &[u8], out: &mut [u8]) {
    debug_assert_eq!(out.len(), bytes.len() * 2);
    for (i, b) in bytes.iter().enumerate() {
        out[2 * i] = HEX_DIGITS[(b >> 4) as usize];
        out[2 * i + 1] = HEX_DIGITS[(b & 0x0f) as usize];
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}…)", self.short_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut buf = [0u8; 64];
        hex_encode(&self.0, &mut buf);
        f.write_str(str::from_utf8(&buf).expect("hex is ASCII"))
    }
}

/// Incremental SHA-256.
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    length: u64,
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hasher.
    pub fn new() -> Sha256 {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buffer: [0u8; 64],
            buffered: 0,
            length: 0,
        }
    }

    /// Absorbs bytes.
    ///
    /// Full 64-byte blocks are compressed directly from `data` — no
    /// round-trip through the internal buffer — and one message-schedule
    /// scratch array serves every block of the call.
    pub fn update(&mut self, mut data: &[u8]) {
        self.length = self.length.wrapping_add(data.len() as u64);
        let mut w = [0u32; 64];
        if self.buffered > 0 {
            let need = 64 - self.buffered;
            let take = need.min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                compress_block(&mut self.state, &mut w, &self.buffer);
                self.buffered = 0;
            }
        }
        let mut blocks = data.chunks_exact(64);
        for block in &mut blocks {
            compress_block(&mut self.state, &mut w, block.try_into().expect("64-byte chunk"));
        }
        let rest = blocks.remainder();
        if !rest.is_empty() {
            self.buffer[..rest.len()].copy_from_slice(rest);
            self.buffered = rest.len();
        }
    }

    /// Produces the digest, consuming the hasher.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.length.wrapping_mul(8);
        let mut w = [0u32; 64];
        let n = self.buffered;
        self.buffer[n] = 0x80;
        if n + 1 > 56 {
            // No room for the length: pad out this block and start another.
            self.buffer[n + 1..].fill(0);
            compress_block(&mut self.state, &mut w, &self.buffer);
            self.buffer = [0u8; 64];
        } else {
            self.buffer[n + 1..56].fill(0);
        }
        self.buffer[56..].copy_from_slice(&bit_len.to_be_bytes());
        compress_block(&mut self.state, &mut w, &self.buffer);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

/// One round of the SHA-256 compression function over `block`.
///
/// A free function (rather than a method) so callers can feed it
/// `self.buffer` and `self.state` simultaneously, and so the `w` schedule
/// scratch can be reused across every block of an `update` call.
fn compress_block(state: &mut [u32; 8], w: &mut [u32; 64], block: &[u8; 64]) {
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// HMAC-SHA256 (RFC 2104).
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        key_block[..32].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(message);
    let inner_hash = inner.finalize();
    let mut outer = Sha256::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_hash);
    outer.finalize()
}

/// A principal identity for keying (replica, client, or the controller).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Principal {
    /// A service replica.
    Replica(u32),
    /// A service client.
    Client(u64),
    /// The Lazarus controller (trusted third party for reconfigurations).
    Controller,
}

impl Principal {
    fn key_material(&self) -> Vec<u8> {
        match self {
            Principal::Replica(id) => format!("replica:{id}").into_bytes(),
            Principal::Client(id) => format!("client:{id}").into_bytes(),
            Principal::Controller => b"controller".to_vec(),
        }
    }
}

/// The deployment-wide keyring: derives per-principal MAC keys from a master
/// secret (simulated key distribution).
#[derive(Debug, Clone)]
pub struct Keyring {
    master: [u8; 32],
}

/// An authentication tag over a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AuthTag(pub [u8; 32]);

impl Keyring {
    /// Keyring for a deployment secret.
    pub fn new(master_secret: &[u8]) -> Keyring {
        Keyring { master: sha256(master_secret) }
    }

    fn key_of(&self, principal: Principal) -> [u8; 32] {
        hmac_sha256(&self.master, &principal.key_material())
    }

    /// Authenticates `message` as `sender`.
    pub fn sign(&self, sender: Principal, message: &[u8]) -> AuthTag {
        AuthTag(hmac_sha256(&self.key_of(sender), message))
    }

    /// Verifies a tag allegedly produced by `sender`.
    pub fn verify(&self, sender: Principal, message: &[u8], tag: &AuthTag) -> bool {
        // Constant-time comparison.
        let expected = self.sign(sender, message);
        let mut diff = 0u8;
        for (a, b) in expected.0.iter().zip(&tag.0) {
            diff |= a ^ b;
        }
        diff == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// NIST / well-known SHA-256 vectors.
    #[test]
    fn sha256_test_vectors() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // One million 'a' characters.
        let million = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&million)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..1000u32).flat_map(|i| i.to_le_bytes()).collect();
        for chunk in [1usize, 3, 7, 63, 64, 65, 128, 999] {
            let mut h = Sha256::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), sha256(&data), "chunk size {chunk}");
        }
    }

    /// RFC 4231 test case 2 (short key "Jefe").
    #[test]
    fn hmac_test_vectors() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex(&tag), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
        // RFC 4231 test case 1.
        let key = [0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(hex(&tag), "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
        // Long key (> block size) path, RFC 4231 test case 6.
        let key = [0xaa; 131];
        let tag = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(hex(&tag), "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
    }

    #[test]
    fn keyring_sign_verify() {
        let ring = Keyring::new(b"deployment-secret");
        let msg = b"PROPOSE view=0 seq=1";
        let tag = ring.sign(Principal::Replica(0), msg);
        assert!(ring.verify(Principal::Replica(0), msg, &tag));
        // wrong sender
        assert!(!ring.verify(Principal::Replica(1), msg, &tag));
        // tampered message
        assert!(!ring.verify(Principal::Replica(0), b"PROPOSE view=0 seq=2", &tag));
        // controller key is distinct
        let ctag = ring.sign(Principal::Controller, msg);
        assert_ne!(tag, ctag);
        assert!(ring.verify(Principal::Controller, msg, &ctag));
    }

    #[test]
    fn different_masters_different_tags() {
        let a = Keyring::new(b"secret-a");
        let b = Keyring::new(b"secret-b");
        let tag = a.sign(Principal::Client(7), b"hello");
        assert!(!b.verify(Principal::Client(7), b"hello", &tag));
    }

    #[test]
    fn digest_of_parts_is_framed() {
        assert_ne!(Digest::of_parts(&[b"ab", b"c"]), Digest::of_parts(&[b"a", b"bc"]));
        assert_eq!(Digest::of_parts(&[b"ab"]), Digest::of_parts(&[b"ab"]));
        assert_ne!(Digest::of(b""), Digest::ZERO);
    }

    #[test]
    fn digest_display() {
        let d = Digest::of(b"abc");
        assert_eq!(d.to_string().len(), 64);
        assert!(d.to_string().starts_with("ba7816bf"));
        assert_eq!(d.short_hex().len(), 16);
        assert!(format!("{d:?}").contains("ba7816bf"));
    }
}
