//! Observability hooks for the replica hot path.
//!
//! [`ReplicaObs`] is the per-replica instrumentation bundle: pre-registered
//! counter handles (one registry lock per series at attach time, lock-free
//! atomic adds afterwards), the proposal→execute latency histogram, and
//! trace events for the rare transitions (view change, checkpoint, state
//! transfer, epoch change). A replica without an attached bundle pays one
//! `Option` branch per hook.
//!
//! [`WireObs`] is the embedding runtime's side: per-message-kind count and
//! bytes-on-wire counters, fed from wherever messages actually hit the
//! "network" (the threaded runtime's channel sends, the testbed's cost
//! model).
//!
//! All counters and histograms are shared across replicas in one registry —
//! their updates commute, so snapshots are deterministic even when replicas
//! run on parallel workers. Timestamps come from the injected
//! [`Clock`](lazarus_obs::Clock): sim-time under the testbed, wall time
//! under the threaded runtime.

use std::collections::HashMap;
use std::sync::Arc;

use lazarus_obs::{Clock, Counter, Gauge, HealthTracker, Histogram, Obs, Tracer};

use crate::types::{Epoch, ReplicaId, SeqNo, View};

/// Every [`Message::label`](crate::messages::Message::label) value, in the
/// protocol's phase order (new kinds are appended — slot indices are part
/// of the metric contract).
pub const MESSAGE_KINDS: [&str; 13] = [
    "REQUEST",
    "PROPOSE",
    "WRITE",
    "ACCEPT",
    "CHECKPOINT",
    "STOP",
    "STOP-DATA",
    "SYNC",
    "CST-REQUEST",
    "CST-REPLY",
    "RECONFIG",
    "CST-CHUNK-REQUEST",
    "CST-CHUNK-REPLY",
];

fn kind_slot(label: &str) -> usize {
    MESSAGE_KINDS.iter().position(|&k| k == label).unwrap_or(0)
}

/// Every reason a replica refuses an ingress message. Rejections are the
/// *designed* response to malformed, forged, stale, or Byzantine traffic —
/// they must be countable (for the nemesis harness and for operators), and
/// they must never escalate to a panic.
pub const REJECT_REASONS: [&str; 15] = [
    "bad-request-sig",
    "stale-request",
    "duplicate-request",
    "stale-consensus",
    "non-member",
    "wrong-view",
    "not-leader",
    "bad-batch",
    "equivocation",
    "stale-view-change",
    "bad-snapshot",
    "bad-reconfig-sig",
    "stale-reconfig",
    "bad-chunk",
    "bad-suffix",
];

fn reason_slot(reason: &str) -> usize {
    REJECT_REASONS.iter().position(|&r| r == reason).unwrap_or(0)
}

/// The replica instrumentation bundle: every optional observer a
/// [`Replica`](crate::replica::Replica) accepts, attached in one
/// [`attach`](crate::replica::Replica::attach) call instead of four
/// separate setters. Embedders build one with the `with_*` combinators and
/// hand clones to each replica:
///
/// ```ignore
/// replica.attach(Instruments::new().with_obs(obs.clone()).with_flight(rec));
/// ```
///
/// Only the present fields are applied, in dependency order — the health
/// tracker hooks into the metrics bundle, so `obs` (when present) attaches
/// first.
#[derive(Clone, Default)]
pub struct Instruments {
    /// Shared metrics/tracer bundle (registry + injected clock).
    pub obs: Option<Obs>,
    /// Streaming health tracker. Requires `obs` (attached previously or in
    /// the same bundle); ignored otherwise.
    pub health: Option<HealthTracker>,
    /// Causal flight recorder for this replica's protocol events.
    pub flight: Option<lazarus_obs::causal::FlightRecorder>,
    /// Phase profiler (deterministic call counts, embedder-charged time).
    pub profiler: Option<lazarus_obs::profile::Profiler>,
}

impl Instruments {
    /// An empty bundle (attaching it is a no-op).
    pub fn new() -> Instruments {
        Instruments::default()
    }

    /// Adds the shared metrics/tracer bundle.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Instruments {
        self.obs = Some(obs);
        self
    }

    /// Adds the streaming health tracker.
    #[must_use]
    pub fn with_health(mut self, health: HealthTracker) -> Instruments {
        self.health = Some(health);
        self
    }

    /// Adds the causal flight recorder.
    #[must_use]
    pub fn with_flight(mut self, flight: lazarus_obs::causal::FlightRecorder) -> Instruments {
        self.flight = Some(flight);
        self
    }

    /// Adds the phase profiler.
    #[must_use]
    pub fn with_profiler(mut self, profiler: lazarus_obs::profile::Profiler) -> Instruments {
        self.profiler = Some(profiler);
        self
    }
}

impl std::fmt::Debug for Instruments {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Instruments")
            .field("obs", &self.obs.is_some())
            .field("health", &self.health.is_some())
            .field("flight", &self.flight.is_some())
            .field("profiler", &self.profiler.is_some())
            .finish()
    }
}

/// Per-slot clock marks along the commit critical path.
#[derive(Debug, Clone, Copy)]
struct SlotMarks {
    proposed: u64,
    wrote: Option<u64>,
    accepted: Option<u64>,
}

/// Per-message-kind wire accounting for an embedding runtime.
#[derive(Debug, Clone)]
pub struct WireObs {
    sent: [Counter; MESSAGE_KINDS.len()],
    bytes: [Counter; MESSAGE_KINDS.len()],
}

impl WireObs {
    /// Registers the `bft_wire_messages_total{kind=…}` /
    /// `bft_wire_bytes_total{kind=…}` series in `obs`'s registry.
    #[must_use]
    pub fn new(obs: &Obs) -> WireObs {
        WireObs {
            sent: MESSAGE_KINDS.map(|kind| {
                obs.registry.counter_with("bft_wire_messages_total", &[("kind", kind)])
            }),
            bytes: MESSAGE_KINDS
                .map(|kind| obs.registry.counter_with("bft_wire_bytes_total", &[("kind", kind)])),
        }
    }

    /// Accounts one message of `label` kind and `wire_size` bytes leaving a
    /// replica, `copies` times (a broadcast is one call with `copies` =
    /// fan-out).
    pub fn sent(&self, label: &str, wire_size: usize, copies: usize) {
        let slot = kind_slot(label);
        self.sent[slot].add(copies as u64);
        self.bytes[slot].add((wire_size * copies) as u64);
    }
}

/// The instrumentation bundle a replica carries once attached.
#[derive(Debug)]
pub struct ReplicaObs {
    clock: Arc<dyn Clock>,
    tracer: Tracer,
    id: ReplicaId,

    msgs_in: [Counter; MESSAGE_KINDS.len()],
    rejected: [Counter; REJECT_REASONS.len()],
    decided_total: Counter,
    executed_requests_total: Counter,
    view_changes_total: Counter,
    help_revotes_total: Counter,
    checkpoints_total: Counter,
    state_transfers_total: Counter,
    commit_latency_us: Histogram,
    cst_chunks_fetched_total: Counter,
    cst_chunks_rejected_total: Counter,
    cst_chunks_resumed_total: Counter,
    recovery_duration_us: Gauge,

    /// Open proposals: slot → phase timestamps along the critical path.
    marks: HashMap<u64, SlotMarks>,

    /// Streaming health aggregation fed from the same hooks (None = the
    /// replica is metered but not health-scored).
    health: Option<HealthTracker>,
}

impl ReplicaObs {
    /// Builds the bundle for replica `id` against `obs`'s shared registry,
    /// tracer, and clock.
    #[must_use]
    pub fn new(obs: &Obs, id: ReplicaId) -> ReplicaObs {
        ReplicaObs {
            clock: Arc::clone(obs.clock()),
            tracer: obs.tracer.clone(),
            id,
            msgs_in: MESSAGE_KINDS
                .map(|kind| obs.registry.counter_with("bft_messages_in_total", &[("kind", kind)])),
            rejected: REJECT_REASONS.map(|reason| {
                obs.registry.counter_with("bft_rejected_messages_total", &[("reason", reason)])
            }),
            decided_total: obs.registry.counter("bft_slots_decided_total"),
            executed_requests_total: obs.registry.counter("bft_requests_executed_total"),
            view_changes_total: obs.registry.counter("bft_view_changes_total"),
            help_revotes_total: obs.registry.counter("bft_help_revotes_total"),
            checkpoints_total: obs.registry.counter("bft_checkpoints_total"),
            state_transfers_total: obs.registry.counter("bft_state_transfers_total"),
            commit_latency_us: obs.registry.histogram("bft_commit_latency_us"),
            cst_chunks_fetched_total: obs.registry.counter("bft_cst_chunks_fetched_total"),
            cst_chunks_rejected_total: obs.registry.counter("bft_cst_chunks_rejected_total"),
            cst_chunks_resumed_total: obs.registry.counter("bft_cst_chunks_resumed_total"),
            recovery_duration_us: obs.registry.gauge("bft_recovery_duration_us"),
            marks: HashMap::new(),
            health: None,
        }
    }

    /// Attaches the streaming health tracker, registering this replica as
    /// starting in `view` under `leader`.
    pub fn attach_health(&mut self, health: HealthTracker, view: View, leader: ReplicaId) {
        health.register(self.id.0, view.0, leader.0);
        self.health = Some(health);
    }

    /// The attached health tracker, if any.
    #[must_use]
    pub fn health(&self) -> Option<&HealthTracker> {
        self.health.as_ref()
    }

    /// Registers `# HELP` texts for the replica metric families (shared
    /// registry — idempotent across replicas).
    pub fn describe(obs: &Obs) {
        let r = &obs.registry;
        r.describe("bft_view_changes_total", "Views installed after a leader change.");
        r.describe("bft_help_revotes_total", "Throttled vote re-sends to lagging peers.");
        r.describe("bft_slots_decided_total", "Consensus slots decided locally.");
        r.describe("bft_state_transfers_total", "Completed CST state transfers.");
        r.describe("bft_commit_latency_us", "Proposal-to-decide latency per slot.");
        r.describe("bft_cst_chunks_fetched_total", "CST snapshot chunks fetched and verified.");
        r.describe("bft_cst_chunks_rejected_total", "CST chunks refused for a digest mismatch.");
        r.describe(
            "bft_cst_chunks_resumed_total",
            "Verified chunks carried across a CST designee rotation instead of re-fetched.",
        );
        r.describe(
            "bft_recovery_duration_us",
            "Virtual duration of the last journal replay at replica boot.",
        );
        r.describe("bft_journal_fsync_us", "Virtual journal sync durations (bytes-derived).");
        r.describe(
            "bft_journal_compaction_us",
            "Virtual journal compaction durations (bytes-derived).",
        );
    }

    /// A protocol message reached `on_message`.
    pub fn message_in(&self, label: &str) {
        self.msgs_in[kind_slot(label)].inc();
    }

    /// An ingress message was refused for `reason` (one of
    /// [`REJECT_REASONS`]). When the refused message came from a member
    /// replica, `culprit` names it and the health tracker charges the
    /// rejection to that *sender* — so a Byzantine replica (corrupt
    /// batches, equivocation, proposals from the wrong node) bleeds
    /// stability score instead of its victims. Rejections with no
    /// attributable replica (client-origin or ambiguous) only count into
    /// the metric.
    pub fn rejected(&self, reason: &str, culprit: Option<ReplicaId>) {
        self.rejected[reason_slot(reason)].inc();
        if let (Some(health), Some(culprit)) = (&self.health, culprit) {
            health.reject(culprit.0);
        }
    }

    /// A proposal for `seq` was accepted into the local instance (starts
    /// the proposal→execute latency clock for that slot).
    pub fn proposal_seen(&mut self, seq: SeqNo) {
        let now = self.clock.now_micros();
        self.marks.entry(seq.0).or_insert(SlotMarks { proposed: now, wrote: None, accepted: None });
        if let Some(health) = &self.health {
            health.proposal_open(self.id.0, seq.0);
        }
    }

    /// This replica sent its WRITE for `seq` (propose phase done).
    pub fn wrote(&mut self, seq: SeqNo) {
        let now = self.clock.now_micros();
        if let Some(marks) = self.marks.get_mut(&seq.0) {
            marks.wrote.get_or_insert(now);
        }
    }

    /// This replica sent its ACCEPT for `seq` (write phase done).
    pub fn accepted(&mut self, seq: SeqNo) {
        let now = self.clock.now_micros();
        if let Some(marks) = self.marks.get_mut(&seq.0) {
            marks.accepted.get_or_insert(now);
        }
    }

    /// Slot `seq` was decided (closes that slot's latency measurement and
    /// feeds the health windows: total latency plus per-phase durations).
    pub fn decided(&mut self, seq: SeqNo) {
        self.decided_total.inc();
        if let Some(marks) = self.marks.remove(&seq.0) {
            let now = self.clock.now_micros();
            let latency = now.saturating_sub(marks.proposed);
            self.commit_latency_us.observe(latency);
            if let Some(health) = &self.health {
                // Missing intermediate marks (e.g. a slot finished via a
                // vote replay) collapse the absent phase to zero time.
                let wrote = marks.wrote.unwrap_or(marks.proposed);
                let accepted = marks.accepted.unwrap_or(wrote);
                health.commit(self.id.0, seq.0, latency);
                health.phases(
                    self.id.0,
                    [
                        wrote.saturating_sub(marks.proposed),
                        accepted.saturating_sub(wrote),
                        now.saturating_sub(accepted),
                    ],
                );
            }
        }
    }

    /// `n` requests were executed against the service.
    pub fn executed(&self, n: usize) {
        self.executed_requests_total.add(n as u64);
    }

    /// A local checkpoint was taken at `seq`.
    pub fn checkpoint(&self, seq: SeqNo) {
        self.checkpoints_total.inc();
        self.tracer.event(
            "replica.checkpoint",
            vec![("replica", self.id.0.into()), ("seq", seq.0.into())],
        );
    }

    /// The replica installed `new_view` (led by `leader`) after a leader
    /// change.
    pub fn view_change(&mut self, new_view: View, leader: ReplicaId) {
        self.view_changes_total.inc();
        // Stale slots from the old view would otherwise pin their start
        // timestamps forever.
        self.marks.clear();
        if let Some(health) = &self.health {
            health.view_change(self.id.0, new_view.0, leader.0);
        }
        self.tracer.event(
            "replica.view_change",
            vec![("replica", self.id.0.into()), ("view", new_view.0.into())],
        );
    }

    /// The replica re-sent its WRITE/ACCEPT votes to help a lagging peer
    /// (throttled to once per `(peer, slot, view)`).
    pub fn help_revote(&self, peer: ReplicaId, seq: SeqNo) {
        self.help_revotes_total.inc();
        if let Some(health) = &self.health {
            // The *peer* needed the help — it is the one falling behind.
            health.help_revote(peer.0);
        }
        self.tracer.event(
            "replica.help_revote",
            vec![("replica", self.id.0.into()), ("peer", peer.0.into()), ("seq", seq.0.into())],
        );
    }

    /// A snapshot chunk arrived and passed its manifest digest check.
    pub fn cst_chunk_fetched(&self) {
        self.cst_chunks_fetched_total.inc();
    }

    /// A snapshot chunk failed its manifest digest check (also counted into
    /// `bft_rejected_messages_total{reason="bad-chunk"}` via
    /// [`rejected`](Self::rejected)).
    pub fn cst_chunk_rejected(&self) {
        self.cst_chunks_rejected_total.inc();
    }

    /// `n` already-verified chunks were carried across a designee rotation
    /// instead of being fetched again.
    pub fn cst_chunks_resumed(&self, n: u64) {
        self.cst_chunks_resumed_total.add(n);
    }

    /// The replica finished replaying its journal at boot; `virtual_us` is
    /// the deterministic bytes-derived replay duration.
    pub fn recovered(&self, seq: SeqNo, virtual_us: u64, torn_tail: bool) {
        self.recovery_duration_us.set(virtual_us as f64);
        self.tracer.event(
            "replica.recovery",
            vec![
                ("replica", self.id.0.into()),
                ("seq", seq.0.into()),
                ("virtual_us", virtual_us.into()),
                ("torn_tail", u64::from(torn_tail).into()),
            ],
        );
    }

    /// A state transfer completed at `seq`.
    pub fn state_transferred(&self, seq: SeqNo) {
        self.state_transfers_total.inc();
        if let Some(health) = &self.health {
            health.cst(self.id.0);
        }
        self.tracer.event(
            "replica.state_transfer",
            vec![("replica", self.id.0.into()), ("seq", seq.0.into())],
        );
    }

    /// The membership changed to `epoch` via an ordered reconfiguration.
    pub fn epoch_changed(&self, epoch: Epoch, n: usize) {
        self.tracer.event(
            "replica.epoch_change",
            vec![("replica", self.id.0.into()), ("epoch", epoch.0.into()), ("n", n.into())],
        );
    }
}

/// Metric handles for a [`Journal`](crate::storage::Journal) backend.
///
/// Durations fed here are *virtual* (deterministic functions of the bytes
/// involved — see `crate::storage`), never wall time, so metric snapshots
/// stay byte-identical across reruns and thread counts.
#[derive(Debug, Clone)]
pub struct JournalObs {
    fsyncs_total: Counter,
    fsync_us: Histogram,
    compactions_total: Counter,
    compaction_us: Histogram,
}

impl JournalObs {
    /// Registers the `bft_journal_*` series in `obs`'s registry.
    #[must_use]
    pub fn new(obs: &Obs) -> JournalObs {
        JournalObs {
            fsyncs_total: obs.registry.counter("bft_journal_fsyncs_total"),
            fsync_us: obs.registry.histogram("bft_journal_fsync_us"),
            compactions_total: obs.registry.counter("bft_journal_compactions_total"),
            compaction_us: obs.registry.histogram("bft_journal_compaction_us"),
        }
    }

    /// One journal sync completed with the given virtual duration.
    pub fn fsync(&self, virtual_us: u64) {
        self.fsyncs_total.inc();
        self.fsync_us.observe(virtual_us);
    }

    /// One compaction completed with the given virtual duration.
    pub fn compaction(&self, virtual_us: u64) {
        self.compactions_total.inc();
        self.compaction_us.observe(virtual_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_cover_every_label() {
        use crate::crypto::Digest;
        use crate::messages::{CheckpointMsg, ConsensusMsg, Message};
        let sample = Message::Checkpoint {
            from: ReplicaId(0),
            msg: CheckpointMsg { seq: SeqNo(1), digest: Digest::of(b"x") },
        };
        assert!(MESSAGE_KINDS.contains(&sample.label()));
        let write = Message::Consensus {
            from: ReplicaId(0),
            msg: ConsensusMsg::Write { view: View(0), seq: SeqNo(1), digest: Digest::of(b"x") },
        };
        assert_eq!(kind_slot(write.label()), 2);
    }

    #[test]
    fn wire_obs_accounts_broadcast_fanout() {
        let obs = Obs::unclocked();
        let wire = WireObs::new(&obs);
        wire.sent("PROPOSE", 100, 3);
        wire.sent("WRITE", 80, 1);
        let snap = obs.registry.snapshot();
        let get = |name: &str| {
            snap.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0)
        };
        assert_eq!(get("bft_wire_messages_total{kind=\"PROPOSE\"}"), 3);
        assert_eq!(get("bft_wire_bytes_total{kind=\"PROPOSE\"}"), 300);
        assert_eq!(get("bft_wire_bytes_total{kind=\"WRITE\"}"), 80);
    }

    #[test]
    fn replica_obs_latency_runs_proposal_to_decide() {
        let clock = Arc::new(lazarus_obs::ManualClock::new());
        let obs = Obs::new(Arc::clone(&clock) as Arc<dyn Clock>);
        let mut robs = ReplicaObs::new(&obs, ReplicaId(0));
        clock.set(100);
        robs.proposal_seen(SeqNo(1));
        clock.set(350);
        robs.decided(SeqNo(1));
        robs.executed(4);
        let snap = obs.registry.snapshot();
        let (_, hist) =
            snap.histograms.iter().find(|(n, _)| n == "bft_commit_latency_us").expect("registered");
        assert_eq!(hist.count, 1);
        assert_eq!(hist.sum, 250);
        assert_eq!(
            snap.counters.iter().find(|(n, _)| n == "bft_requests_executed_total").unwrap().1,
            4
        );
    }
}
