//! A BFT state-machine-replication library (the execution plane of Lazarus).
//!
//! A from-scratch, BFT-SMaRt-inspired replication kernel:
//!
//! * [`replica`] — the Mod-SMaRt-style replica state machine: pipelined
//!   PROPOSE/WRITE/ACCEPT consensus (up to a configurable window of slots
//!   in flight, executed in order) with Byzantine quorums, request
//!   watchdogs, STOP/STOP-DATA/SYNC leader change, quorum-stable
//!   checkpoints, state transfer, and controller-driven replica-set
//!   **reconfiguration** (the mechanism Lazarus uses to rotate diverse
//!   replicas in and out, paper §5.2/§7.3);
//! * [`batcher`] — the leader-side batch assembler (fixed or
//!   queue-depth-adaptive sizing);
//! * [`client`] — the `f + 1`-matching-replies client;
//! * [`service`] — the deterministic state-machine trait applications
//!   implement;
//! * [`crypto`] — SHA-256 / HMAC-SHA256 and the simulated key
//!   distribution;
//! * [`consensus`], [`log`], [`messages`], [`types`] — the protocol
//!   building blocks;
//! * [`storage`] — pluggable durability behind the decided log: an
//!   in-memory backend and an append-only CRC-framed journal a rebooting
//!   replica recovers from;
//! * [`runtime`] — a threaded wall-clock runtime (one thread per replica,
//!   crossbeam channels as the network);
//! * [`testkit`] — a deterministic in-memory cluster for tests.
//!
//! Replicas are pure state machines (`input → Vec<Action>`), so the same
//! protocol code runs under the discrete-event performance simulator
//! (`lazarus-testbed`) and the threaded wall-clock runtime.
//!
//! # Example
//!
//! ```
//! use bytes::Bytes;
//! use lazarus_bft::client::Client;
//! use lazarus_bft::testkit::{TestCluster, TEST_SECRET};
//! use lazarus_bft::types::ClientId;
//!
//! let mut cluster = TestCluster::new(4, 1000);
//! let mut client = Client::new(ClientId(1), cluster.membership(), TEST_SECRET);
//! let result = cluster.run_client_op(&mut client, b"hello");
//! assert_eq!(&result[..], b"hello"); // echo service
//! ```

#![warn(missing_docs)]

pub mod batcher;
pub mod client;
pub mod consensus;
pub mod crypto;
pub mod log;
pub mod messages;
pub mod obs;
pub mod replica;
pub mod runtime;
pub mod service;
pub mod storage;
pub mod testkit;
pub mod types;

pub use batcher::BatchPolicy;
pub use client::Client;
pub use obs::Instruments;
pub use replica::{Action, Ctx, Replica, ReplicaConfig, Status, TimerId};
pub use service::Service;
pub use types::{ClientId, Epoch, Membership, ReplicaId, SeqNo, View};
