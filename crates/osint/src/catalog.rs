//! The operating-system catalog used throughout the evaluation.
//!
//! Paper §6 studies 21 OS versions drawn from eight distributions (OpenBSD,
//! FreeBSD, Solaris, Windows, Ubuntu, Debian, Fedora, RedHat); §7 runs 17 of
//! them (plus OpenSuse) under VirtualBox. This module provides the identity
//! side of that catalog — families, versions, CPE names, and the structural
//! relationships (shared kernel, shared package base) that drive common
//! vulnerabilities. Performance profiles live in `lazarus-testbed`.

use std::fmt;

use crate::cpe::Cpe;

/// An OS distribution family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OsFamily {
    /// OpenBSD.
    OpenBsd,
    /// FreeBSD.
    FreeBsd,
    /// Oracle Solaris.
    Solaris,
    /// Microsoft Windows (client and server).
    Windows,
    /// Ubuntu.
    Ubuntu,
    /// Debian.
    Debian,
    /// Fedora.
    Fedora,
    /// Red Hat Enterprise Linux.
    RedHat,
    /// OpenSuse (appears only in the §7 testbed).
    OpenSuse,
}

impl OsFamily {
    /// All families, in the paper's order.
    pub const ALL: [OsFamily; 9] = [
        OsFamily::OpenBsd,
        OsFamily::FreeBsd,
        OsFamily::Solaris,
        OsFamily::Windows,
        OsFamily::Ubuntu,
        OsFamily::Debian,
        OsFamily::Fedora,
        OsFamily::RedHat,
        OsFamily::OpenSuse,
    ];

    /// The broad kernel lineage, the strongest axis of vulnerability
    /// sharing: a kernel flaw tends to affect every distribution of the
    /// lineage (e.g. CVE-2018-8897 hit Ubuntu and Debian simultaneously).
    pub fn kernel(self) -> Kernel {
        match self {
            OsFamily::Ubuntu
            | OsFamily::Debian
            | OsFamily::Fedora
            | OsFamily::RedHat
            | OsFamily::OpenSuse => Kernel::Linux,
            OsFamily::Windows => Kernel::Nt,
            OsFamily::FreeBsd => Kernel::FreeBsd,
            OsFamily::OpenBsd => Kernel::OpenBsd,
            OsFamily::Solaris => Kernel::SunOs,
        }
    }

    /// The userland package base; Debian-derived systems share packaging
    /// (and therefore packaged-software vulnerabilities) more tightly than
    /// the kernel lineage alone suggests, as do the RPM distributions.
    pub fn package_base(self) -> PackageBase {
        match self {
            OsFamily::Ubuntu | OsFamily::Debian => PackageBase::Deb,
            OsFamily::Fedora | OsFamily::RedHat | OsFamily::OpenSuse => PackageBase::Rpm,
            OsFamily::Windows => PackageBase::Windows,
            OsFamily::FreeBsd | OsFamily::OpenBsd => PackageBase::BsdPorts,
            OsFamily::Solaris => PackageBase::Ips,
        }
    }

    /// CPE `vendor` component.
    pub fn cpe_vendor(self) -> &'static str {
        match self {
            OsFamily::OpenBsd => "openbsd",
            OsFamily::FreeBsd => "freebsd",
            OsFamily::Solaris => "oracle",
            OsFamily::Windows => "microsoft",
            OsFamily::Ubuntu => "canonical",
            OsFamily::Debian => "debian",
            OsFamily::Fedora => "fedoraproject",
            OsFamily::RedHat => "redhat",
            OsFamily::OpenSuse => "opensuse",
        }
    }

    /// CPE `product` component.
    pub fn cpe_product(self) -> &'static str {
        match self {
            OsFamily::OpenBsd => "openbsd",
            OsFamily::FreeBsd => "freebsd",
            OsFamily::Solaris => "solaris",
            OsFamily::Windows => "windows",
            OsFamily::Ubuntu => "ubuntu_linux",
            OsFamily::Debian => "debian_linux",
            OsFamily::Fedora => "fedora",
            OsFamily::RedHat => "enterprise_linux",
            OsFamily::OpenSuse => "leap",
        }
    }
}

impl fmt::Display for OsFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OsFamily::OpenBsd => "OpenBSD",
            OsFamily::FreeBsd => "FreeBSD",
            OsFamily::Solaris => "Solaris",
            OsFamily::Windows => "Windows",
            OsFamily::Ubuntu => "Ubuntu",
            OsFamily::Debian => "Debian",
            OsFamily::Fedora => "Fedora",
            OsFamily::RedHat => "RedHat",
            OsFamily::OpenSuse => "OpenSuse",
        };
        f.write_str(s)
    }
}

/// Kernel lineage (see [`OsFamily::kernel`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// The Linux kernel.
    Linux,
    /// Windows NT.
    Nt,
    /// FreeBSD kernel.
    FreeBsd,
    /// OpenBSD kernel.
    OpenBsd,
    /// SunOS / illumos.
    SunOs,
}

/// Userland package base (see [`OsFamily::package_base`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PackageBase {
    /// dpkg/apt world (Debian, Ubuntu).
    Deb,
    /// rpm world (Fedora, RHEL, OpenSuse).
    Rpm,
    /// Windows component store.
    Windows,
    /// BSD ports/pkg.
    BsdPorts,
    /// Solaris IPS.
    Ips,
}

/// One concrete OS version — the unit of diversity in Lazarus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OsVersion {
    /// The distribution family.
    pub family: OsFamily,
    /// Version label (static; the catalog is closed).
    pub version: &'static str,
}

impl OsVersion {
    /// Creates an OS version entry.
    pub const fn new(family: OsFamily, version: &'static str) -> OsVersion {
        OsVersion { family, version }
    }

    /// The concrete CPE name for this OS version.
    pub fn to_cpe(self) -> Cpe {
        Cpe::os(self.family.cpe_vendor(), self.family.cpe_product(), self.version)
    }

    /// Short identifier in the style of paper Table 2 (`UB16`, `SO11`, …).
    pub fn short_id(self) -> String {
        let fam = match self.family {
            OsFamily::OpenBsd => "OB",
            OsFamily::FreeBsd => "FB",
            OsFamily::Solaris => "SO",
            OsFamily::Windows => "W",
            OsFamily::Ubuntu => "UB",
            OsFamily::Debian => "DE",
            OsFamily::Fedora => "FE",
            OsFamily::RedHat => "RH",
            OsFamily::OpenSuse => "OS",
        };
        // Windows Server gets the paper's dedicated "WS" prefix (WS12).
        if self.family == OsFamily::Windows {
            if let Some(year) = self.version.strip_prefix("server_") {
                let digits: String = year.chars().filter(|c| c.is_ascii_digit()).collect();
                let short = if digits.len() > 2 { &digits[2..] } else { &digits[..] };
                return format!("WS{short}");
            }
        }
        let digits: String = self.version.chars().filter(|c| c.is_ascii_digit()).collect();
        let trimmed: String = match self.family {
            OsFamily::Ubuntu | OsFamily::OpenBsd | OsFamily::FreeBsd | OsFamily::OpenSuse => {
                digits.chars().take(2).collect()
            }
            _ => digits,
        };
        format!("{fam}{trimmed}")
    }
}

impl fmt::Display for OsVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.family, self.version)
    }
}

/// The 21 OS versions of the §6 risk study.
pub fn study_oses() -> Vec<OsVersion> {
    use OsFamily::*;
    vec![
        OsVersion::new(OpenBsd, "6.0"),
        OsVersion::new(OpenBsd, "6.1"),
        OsVersion::new(FreeBsd, "10"),
        OsVersion::new(FreeBsd, "11"),
        OsVersion::new(Solaris, "10"),
        OsVersion::new(Solaris, "11"),
        OsVersion::new(Windows, "7"),
        OsVersion::new(Windows, "8.1"),
        OsVersion::new(Windows, "10"),
        OsVersion::new(Windows, "server_2012"),
        OsVersion::new(Ubuntu, "14.04"),
        OsVersion::new(Ubuntu, "16.04"),
        OsVersion::new(Ubuntu, "17.04"),
        OsVersion::new(Debian, "7"),
        OsVersion::new(Debian, "8"),
        OsVersion::new(Debian, "9"),
        OsVersion::new(Fedora, "24"),
        OsVersion::new(Fedora, "25"),
        OsVersion::new(Fedora, "26"),
        OsVersion::new(RedHat, "6"),
        OsVersion::new(RedHat, "7"),
    ]
}

/// The 17 OS versions of the §7 performance testbed (paper Table 2).
pub fn testbed_oses() -> Vec<OsVersion> {
    use OsFamily::*;
    vec![
        OsVersion::new(Ubuntu, "14.04"),
        OsVersion::new(Ubuntu, "16.04"),
        OsVersion::new(Ubuntu, "17.04"),
        OsVersion::new(OpenSuse, "42.1"),
        OsVersion::new(Fedora, "24"),
        OsVersion::new(Fedora, "25"),
        OsVersion::new(Fedora, "26"),
        OsVersion::new(Debian, "7"),
        OsVersion::new(Debian, "8"),
        OsVersion::new(Windows, "10"),
        OsVersion::new(Windows, "server_2012"),
        OsVersion::new(FreeBsd, "10"),
        OsVersion::new(FreeBsd, "11"),
        OsVersion::new(Solaris, "10"),
        OsVersion::new(Solaris, "11"),
        OsVersion::new(OpenBsd, "6.0"),
        OsVersion::new(OpenBsd, "6.1"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn study_catalog_has_21_distinct_versions() {
        let oses = study_oses();
        assert_eq!(oses.len(), 21);
        let unique: HashSet<_> = oses.iter().collect();
        assert_eq!(unique.len(), 21);
    }

    #[test]
    fn testbed_catalog_has_17_versions() {
        let oses = testbed_oses();
        assert_eq!(oses.len(), 17);
        let unique: HashSet<_> = oses.iter().collect();
        assert_eq!(unique.len(), 17);
    }

    #[test]
    fn study_catalog_covers_eight_families() {
        let fams: HashSet<_> = study_oses().iter().map(|o| o.family).collect();
        assert_eq!(fams.len(), 8);
        assert!(!fams.contains(&OsFamily::OpenSuse));
    }

    #[test]
    fn short_ids_match_table2() {
        assert_eq!(OsVersion::new(OsFamily::Ubuntu, "16.04").short_id(), "UB16");
        assert_eq!(OsVersion::new(OsFamily::OpenSuse, "42.1").short_id(), "OS42");
        assert_eq!(OsVersion::new(OsFamily::Fedora, "24").short_id(), "FE24");
        assert_eq!(OsVersion::new(OsFamily::Debian, "8").short_id(), "DE8");
        assert_eq!(OsVersion::new(OsFamily::Windows, "10").short_id(), "W10");
        assert_eq!(OsVersion::new(OsFamily::Windows, "server_2012").short_id(), "WS12");
        assert_eq!(OsVersion::new(OsFamily::FreeBsd, "11").short_id(), "FB11");
        assert_eq!(OsVersion::new(OsFamily::Solaris, "11").short_id(), "SO11");
        assert_eq!(OsVersion::new(OsFamily::OpenBsd, "6.1").short_id(), "OB61");
    }

    #[test]
    fn cpe_identity() {
        let ub = OsVersion::new(OsFamily::Ubuntu, "16.04").to_cpe();
        assert_eq!(ub.to_string(), "cpe:2.3:o:canonical:ubuntu_linux:16.04:*:*:*:*:*:*:*");
        // CPEs of different versions are distinct but same product.
        let ub17 = OsVersion::new(OsFamily::Ubuntu, "17.04").to_cpe();
        assert_ne!(ub, ub17);
        assert!(ub.same_product(&ub17));
    }

    #[test]
    fn kernel_and_package_relationships() {
        assert_eq!(OsFamily::Ubuntu.kernel(), OsFamily::Debian.kernel());
        assert_eq!(OsFamily::Fedora.kernel(), Kernel::Linux);
        assert_ne!(OsFamily::FreeBsd.kernel(), OsFamily::OpenBsd.kernel());
        assert_eq!(OsFamily::Ubuntu.package_base(), OsFamily::Debian.package_base());
        assert_eq!(OsFamily::Fedora.package_base(), OsFamily::RedHat.package_base());
        assert_ne!(OsFamily::Ubuntu.package_base(), OsFamily::Fedora.package_base());
    }

    #[test]
    fn display_names() {
        assert_eq!(OsVersion::new(OsFamily::Ubuntu, "16.04").to_string(), "Ubuntu 16.04");
        assert_eq!(
            OsVersion::new(OsFamily::Windows, "server_2012").to_string(),
            "Windows server_2012"
        );
    }
}
