//! NVD JSON data-feed parsing (NVD_CVE schema 1.1 subset).
//!
//! NVD publishes vulnerability feeds as JSON documents
//! (`nvdcve-1.1-<year>.json`). The Lazarus data manager parses these feeds,
//! "considering only the vulnerabilities that affect the chosen products"
//! (paper §5.1). This module models the subset of the schema Lazarus needs —
//! CVE metadata, English description, CPE applicability (including version
//! ranges and nested configuration nodes), and CVSS v3 impact — and converts
//! items into [`Vulnerability`] records.
//!
//! Serialization is also supported so the synthetic OSINT world
//! (`crate::synth`) can emit byte-faithful feeds that exercise this same
//! parser, exactly as a live deployment would.

use std::fmt;

use crate::cpe::{Cpe, VersionRange};
use crate::cvss::CvssV3;
use crate::date::Date;
use crate::json::{self, JsonError, Value};
use crate::model::{AffectedPlatform, CveId, Vulnerability};

/// Top-level NVD feed document.
#[derive(Debug, Clone)]
pub struct NvdFeed {
    /// Always `"CVE"`.
    pub data_type: String,
    /// Feed format label.
    pub data_format: String,
    /// Number of items, as a string (sic — NVD encodes it that way).
    pub number_of_cves: String,
    /// The vulnerability entries.
    pub items: Vec<NvdItem>,
}

/// One `CVE_Items[]` entry.
#[derive(Debug, Clone)]
pub struct NvdItem {
    /// CVE block: id and descriptions.
    pub cve: NvdCve,
    /// Platform applicability statements.
    pub configurations: NvdConfigurations,
    /// Impact block (CVSS).
    pub impact: NvdImpact,
    /// Publication timestamp, e.g. `2018-05-08T13:29Z`.
    pub published_date: String,
}

/// The `cve` sub-object.
#[derive(Debug, Clone)]
pub struct NvdCve {
    /// Metadata holding the CVE id.
    pub meta: NvdMeta,
    /// Description list.
    pub description: NvdDescription,
}

/// `CVE_data_meta`.
#[derive(Debug, Clone)]
pub struct NvdMeta {
    /// The CVE identifier, e.g. `CVE-2018-8897`.
    pub id: String,
}

/// `description` block.
#[derive(Debug, Clone, Default)]
pub struct NvdDescription {
    /// Language-tagged description strings.
    pub description_data: Vec<NvdLangString>,
}

/// One language-tagged string.
#[derive(Debug, Clone)]
pub struct NvdLangString {
    /// BCP-47 language tag (NVD uses `en`).
    pub lang: String,
    /// The text.
    pub value: String,
}

/// `configurations` block: a forest of applicability nodes.
#[derive(Debug, Clone, Default)]
pub struct NvdConfigurations {
    /// Root nodes.
    pub nodes: Vec<NvdNode>,
}

/// One applicability node (possibly an AND/OR combination).
#[derive(Debug, Clone, Default)]
pub struct NvdNode {
    /// `AND` / `OR`; Lazarus flattens both, taking the union of vulnerable
    /// platforms (the conservative reading for risk purposes).
    pub operator: String,
    /// CPE match expressions at this node.
    pub cpe_match: Vec<NvdCpeMatch>,
    /// Nested nodes.
    pub children: Vec<NvdNode>,
}

/// One CPE match expression.
#[derive(Debug, Clone)]
pub struct NvdCpeMatch {
    /// Whether the matched platform is vulnerable (vs. merely present).
    pub vulnerable: bool,
    /// CPE 2.3 formatted string.
    pub cpe23_uri: String,
    /// Inclusive version lower bound.
    pub version_start_including: Option<String>,
    /// Exclusive version lower bound.
    pub version_start_excluding: Option<String>,
    /// Inclusive version upper bound.
    pub version_end_including: Option<String>,
    /// Exclusive version upper bound.
    pub version_end_excluding: Option<String>,
}

/// `impact` block.
#[derive(Debug, Clone, Default)]
pub struct NvdImpact {
    /// CVSS v3 metrics, when assigned.
    pub base_metric_v3: Option<NvdBaseMetricV3>,
}

/// `baseMetricV3`.
#[derive(Debug, Clone)]
pub struct NvdBaseMetricV3 {
    /// The CVSS v3 object.
    pub cvss_v3: NvdCvssV3,
}

/// `cvssV3`.
#[derive(Debug, Clone)]
pub struct NvdCvssV3 {
    /// The vector string, e.g. `CVSS:3.1/AV:N/...`.
    pub vector_string: String,
    /// The published base score (we recompute and cross-check).
    pub base_score: f64,
}

/// Error produced while parsing or converting an NVD feed.
#[derive(Debug)]
pub enum FeedError {
    /// The document is not valid JSON / does not fit the schema.
    Json(JsonError),
    /// An item carried an invalid field (CVE id, date, CPE, CVSS vector).
    Item {
        /// The offending CVE id (or raw string when the id itself is bad).
        cve: String,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for FeedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeedError::Json(e) => write!(f, "malformed NVD feed JSON: {e}"),
            FeedError::Item { cve, detail } => write!(f, "invalid NVD item {cve}: {detail}"),
        }
    }
}

impl std::error::Error for FeedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FeedError::Json(e) => Some(e),
            FeedError::Item { .. } => None,
        }
    }
}

impl From<JsonError> for FeedError {
    fn from(e: JsonError) -> Self {
        FeedError::Json(e)
    }
}

impl NvdFeed {
    /// Wraps items in a feed document with correct counters.
    pub fn from_items(items: Vec<NvdItem>) -> NvdFeed {
        NvdFeed {
            data_type: "CVE".to_string(),
            data_format: "MITRE".to_string(),
            number_of_cves: items.len().to_string(),
            items,
        }
    }

    /// Parses a feed document from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`FeedError::Json`] when the text is not schema-valid JSON.
    pub fn parse(json: &str) -> Result<NvdFeed, FeedError> {
        Ok(NvdFeed::from_value(&json::parse(json)?)?)
    }

    /// Serializes the feed to JSON text.
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Converts every item into a [`Vulnerability`] record.
    ///
    /// Items without a CVSS v3 assignment or an English description are
    /// skipped (NVD marks them `** RESERVED **` / awaiting analysis), which
    /// mirrors the prototype's behaviour of acting only on analysed entries.
    ///
    /// # Errors
    ///
    /// Returns [`FeedError::Item`] when an analysed item carries malformed
    /// data (bad CVE id, date, CPE or CVSS vector) — corrupt feeds should be
    /// surfaced, not silently dropped.
    pub fn to_vulnerabilities(&self) -> Result<Vec<Vulnerability>, FeedError> {
        let mut out = Vec::with_capacity(self.items.len());
        for item in &self.items {
            if let Some(v) = item.to_vulnerability()? {
                out.push(v);
            }
        }
        Ok(out)
    }
}

impl NvdItem {
    /// Builds an item from a [`Vulnerability`] (used by feed generators).
    pub fn from_vulnerability(v: &Vulnerability) -> NvdItem {
        NvdItem {
            cve: NvdCve {
                meta: NvdMeta { id: v.id.to_string() },
                description: NvdDescription {
                    description_data: vec![NvdLangString {
                        lang: "en".to_string(),
                        value: v.description.clone(),
                    }],
                },
            },
            configurations: NvdConfigurations {
                nodes: vec![NvdNode {
                    operator: "OR".to_string(),
                    cpe_match: v
                        .affected
                        .iter()
                        .map(|p| NvdCpeMatch {
                            vulnerable: true,
                            cpe23_uri: p.cpe.to_string(),
                            version_start_including: p.range.start_including.clone(),
                            version_start_excluding: p.range.start_excluding.clone(),
                            version_end_including: p.range.end_including.clone(),
                            version_end_excluding: p.range.end_excluding.clone(),
                        })
                        .collect(),
                    children: Vec::new(),
                }],
            },
            impact: NvdImpact {
                base_metric_v3: Some(NvdBaseMetricV3 {
                    cvss_v3: NvdCvssV3 {
                        vector_string: v.cvss.to_string(),
                        base_score: v.cvss.base_score(),
                    },
                }),
            },
            published_date: format!("{}T00:00Z", v.published),
        }
    }

    /// Converts into a [`Vulnerability`]; `Ok(None)` for unanalysed items.
    pub fn to_vulnerability(&self) -> Result<Option<Vulnerability>, FeedError> {
        let cve_raw = &self.cve.meta.id;
        let item_err = |detail: String| FeedError::Item { cve: cve_raw.clone(), detail };

        let Some(metric) = &self.impact.base_metric_v3 else {
            return Ok(None);
        };
        let Some(desc) = self.cve.description.description_data.iter().find(|d| d.lang == "en")
        else {
            return Ok(None);
        };
        if desc.value.starts_with("** RESERVED **") || desc.value.starts_with("** REJECT **") {
            return Ok(None);
        }

        let id: CveId = cve_raw.parse().map_err(|e| item_err(format!("bad CVE id: {e}")))?;
        let published: Date =
            self.published_date.parse().map_err(|e| item_err(format!("bad publishedDate: {e}")))?;
        let cvss: CvssV3 = metric
            .cvss_v3
            .vector_string
            .parse()
            .map_err(|e| item_err(format!("bad CVSS vector: {e}")))?;

        let mut vuln = Vulnerability::new(id, published, cvss, desc.value.clone());
        let mut stack: Vec<&NvdNode> = self.configurations.nodes.iter().collect();
        while let Some(node) = stack.pop() {
            for m in &node.cpe_match {
                if !m.vulnerable {
                    continue;
                }
                let cpe: Cpe =
                    m.cpe23_uri.parse().map_err(|e| item_err(format!("bad CPE: {e}")))?;
                vuln.affected.push(AffectedPlatform {
                    cpe,
                    range: VersionRange {
                        start_including: m.version_start_including.clone(),
                        start_excluding: m.version_start_excluding.clone(),
                        end_including: m.version_end_including.clone(),
                        end_excluding: m.version_end_excluding.clone(),
                    },
                });
            }
            stack.extend(node.children.iter());
        }
        Ok(Some(vuln))
    }
}

// ---------------------------------------------------------------------------
// JSON (de)serialization — hand-written against `crate::json`, preserving the
// NVD 1.1 field names. Missing-field and wrong-type errors surface as
// `FeedError::Json`, exactly like schema violations from a derive-based
// deserializer would.
// ---------------------------------------------------------------------------

fn req_str(v: &Value, key: &str) -> Result<String, JsonError> {
    Ok(v.req(key)?.as_str(key)?.to_string())
}

fn opt_str(v: &Value, key: &str) -> Result<Option<String>, JsonError> {
    match v.get(key) {
        Some(field) => Ok(Some(field.as_str(key)?.to_string())),
        None => Ok(None),
    }
}

fn push_opt(fields: &mut Vec<(String, Value)>, key: &str, value: &Option<String>) {
    if let Some(s) = value {
        fields.push((key.to_string(), Value::String(s.clone())));
    }
}

impl NvdFeed {
    fn from_value(v: &Value) -> Result<NvdFeed, JsonError> {
        v.as_object("NVD feed")?;
        Ok(NvdFeed {
            data_type: req_str(v, "CVE_data_type")?,
            data_format: req_str(v, "CVE_data_format")?,
            number_of_cves: req_str(v, "CVE_data_numberOfCVEs")?,
            items: v
                .req("CVE_Items")?
                .as_array("CVE_Items")?
                .iter()
                .map(NvdItem::from_value)
                .collect::<Result<_, _>>()?,
        })
    }

    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("CVE_data_type".into(), Value::String(self.data_type.clone())),
            ("CVE_data_format".into(), Value::String(self.data_format.clone())),
            ("CVE_data_numberOfCVEs".into(), Value::String(self.number_of_cves.clone())),
            ("CVE_Items".into(), Value::Array(self.items.iter().map(NvdItem::to_value).collect())),
        ])
    }
}

impl NvdItem {
    fn from_value(v: &Value) -> Result<NvdItem, JsonError> {
        Ok(NvdItem {
            cve: NvdCve::from_value(v.req("cve")?)?,
            configurations: match v.get("configurations") {
                Some(c) => NvdConfigurations::from_value(c)?,
                None => NvdConfigurations::default(),
            },
            impact: match v.get("impact") {
                Some(i) => NvdImpact::from_value(i)?,
                None => NvdImpact::default(),
            },
            published_date: req_str(v, "publishedDate")?,
        })
    }

    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("cve".into(), self.cve.to_value()),
            ("configurations".into(), self.configurations.to_value()),
            ("impact".into(), self.impact.to_value()),
            ("publishedDate".into(), Value::String(self.published_date.clone())),
        ])
    }
}

impl NvdCve {
    fn from_value(v: &Value) -> Result<NvdCve, JsonError> {
        let meta = v.req("CVE_data_meta")?;
        let description = v.req("description")?;
        Ok(NvdCve {
            meta: NvdMeta { id: req_str(meta, "ID")? },
            description: NvdDescription {
                description_data: description
                    .req("description_data")?
                    .as_array("description_data")?
                    .iter()
                    .map(|d| {
                        Ok(NvdLangString { lang: req_str(d, "lang")?, value: req_str(d, "value")? })
                    })
                    .collect::<Result<_, JsonError>>()?,
            },
        })
    }

    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "CVE_data_meta".into(),
                Value::Object(vec![("ID".into(), Value::String(self.meta.id.clone()))]),
            ),
            (
                "description".into(),
                Value::Object(vec![(
                    "description_data".into(),
                    Value::Array(
                        self.description
                            .description_data
                            .iter()
                            .map(|d| {
                                Value::Object(vec![
                                    ("lang".into(), Value::String(d.lang.clone())),
                                    ("value".into(), Value::String(d.value.clone())),
                                ])
                            })
                            .collect(),
                    ),
                )]),
            ),
        ])
    }
}

impl NvdConfigurations {
    fn from_value(v: &Value) -> Result<NvdConfigurations, JsonError> {
        Ok(NvdConfigurations {
            nodes: match v.get("nodes") {
                Some(nodes) => nodes
                    .as_array("nodes")?
                    .iter()
                    .map(NvdNode::from_value)
                    .collect::<Result<_, _>>()?,
                None => Vec::new(),
            },
        })
    }

    fn to_value(&self) -> Value {
        Value::Object(vec![(
            "nodes".into(),
            Value::Array(self.nodes.iter().map(NvdNode::to_value).collect()),
        )])
    }
}

impl NvdNode {
    fn from_value(v: &Value) -> Result<NvdNode, JsonError> {
        Ok(NvdNode {
            operator: opt_str(v, "operator")?.unwrap_or_default(),
            cpe_match: match v.get("cpe_match") {
                Some(matches) => matches
                    .as_array("cpe_match")?
                    .iter()
                    .map(NvdCpeMatch::from_value)
                    .collect::<Result<_, _>>()?,
                None => Vec::new(),
            },
            children: match v.get("children") {
                Some(children) => children
                    .as_array("children")?
                    .iter()
                    .map(NvdNode::from_value)
                    .collect::<Result<_, _>>()?,
                None => Vec::new(),
            },
        })
    }

    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("operator".into(), Value::String(self.operator.clone())),
            (
                "cpe_match".into(),
                Value::Array(self.cpe_match.iter().map(NvdCpeMatch::to_value).collect()),
            ),
            (
                "children".into(),
                Value::Array(self.children.iter().map(NvdNode::to_value).collect()),
            ),
        ])
    }
}

impl NvdCpeMatch {
    fn from_value(v: &Value) -> Result<NvdCpeMatch, JsonError> {
        Ok(NvdCpeMatch {
            vulnerable: v.req("vulnerable")?.as_bool("vulnerable")?,
            cpe23_uri: req_str(v, "cpe23Uri")?,
            version_start_including: opt_str(v, "versionStartIncluding")?,
            version_start_excluding: opt_str(v, "versionStartExcluding")?,
            version_end_including: opt_str(v, "versionEndIncluding")?,
            version_end_excluding: opt_str(v, "versionEndExcluding")?,
        })
    }

    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("vulnerable".into(), Value::Bool(self.vulnerable)),
            ("cpe23Uri".into(), Value::String(self.cpe23_uri.clone())),
        ];
        push_opt(&mut fields, "versionStartIncluding", &self.version_start_including);
        push_opt(&mut fields, "versionStartExcluding", &self.version_start_excluding);
        push_opt(&mut fields, "versionEndIncluding", &self.version_end_including);
        push_opt(&mut fields, "versionEndExcluding", &self.version_end_excluding);
        Value::Object(fields)
    }
}

impl NvdImpact {
    fn from_value(v: &Value) -> Result<NvdImpact, JsonError> {
        Ok(NvdImpact {
            base_metric_v3: match v.get("baseMetricV3") {
                Some(metric) => {
                    let cvss = metric.req("cvssV3")?;
                    Some(NvdBaseMetricV3 {
                        cvss_v3: NvdCvssV3 {
                            vector_string: req_str(cvss, "vectorString")?,
                            base_score: cvss.req("baseScore")?.as_f64("baseScore")?,
                        },
                    })
                }
                None => None,
            },
        })
    }

    fn to_value(&self) -> Value {
        let mut fields = Vec::new();
        if let Some(metric) = &self.base_metric_v3 {
            fields.push((
                "baseMetricV3".into(),
                Value::Object(vec![(
                    "cvssV3".into(),
                    Value::Object(vec![
                        (
                            "vectorString".into(),
                            Value::String(metric.cvss_v3.vector_string.clone()),
                        ),
                        ("baseScore".into(), Value::Number(metric.cvss_v3.base_score)),
                    ]),
                )]),
            ));
        }
        Value::Object(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{OsFamily, OsVersion};

    /// A hand-written feed fragment in genuine NVD 1.1 shape.
    const SAMPLE: &str = r#"{
      "CVE_data_type": "CVE",
      "CVE_data_format": "MITRE",
      "CVE_data_numberOfCVEs": "2",
      "CVE_Items": [
        {
          "cve": {
            "CVE_data_meta": { "ID": "CVE-2016-4428" },
            "description": { "description_data": [
              { "lang": "en",
                "value": "Cross-site scripting (XSS) vulnerability in OpenStack Dashboard (Horizon) 8.0.1 and earlier and 9.0.0 through 9.0.1 allows remote authenticated users to inject arbitrary web script or HTML by injecting an AngularJS template in a dashboard form." }
            ] }
          },
          "configurations": { "nodes": [
            { "operator": "OR",
              "cpe_match": [
                { "vulnerable": true,
                  "cpe23Uri": "cpe:2.3:a:openstack:horizon:*:*:*:*:*:*:*:*",
                  "versionEndIncluding": "8.0.1" },
                { "vulnerable": true,
                  "cpe23Uri": "cpe:2.3:a:openstack:horizon:*:*:*:*:*:*:*:*",
                  "versionStartIncluding": "9.0.0",
                  "versionEndIncluding": "9.0.1" }
              ],
              "children": [
                { "operator": "OR",
                  "cpe_match": [
                    { "vulnerable": true,
                      "cpe23Uri": "cpe:2.3:o:debian:debian_linux:8:*:*:*:*:*:*:*" },
                    { "vulnerable": false,
                      "cpe23Uri": "cpe:2.3:h:generic:server:-:*:*:*:*:*:*:*" }
                  ] }
              ] }
          ] },
          "impact": { "baseMetricV3": { "cvssV3": {
            "vectorString": "CVSS:3.0/AV:N/AC:L/PR:L/UI:R/S:C/C:L/I:L/A:N",
            "baseScore": 5.4
          } } },
          "publishedDate": "2016-07-01T20:59Z"
        },
        {
          "cve": {
            "CVE_data_meta": { "ID": "CVE-2018-99999" },
            "description": { "description_data": [
              { "lang": "en", "value": "** RESERVED ** pending analysis." }
            ] }
          },
          "publishedDate": "2018-01-01T00:00Z"
        }
      ]
    }"#;

    #[test]
    fn parses_real_shape_feed() {
        let feed = NvdFeed::parse(SAMPLE).unwrap();
        assert_eq!(feed.items.len(), 2);
        let vulns = feed.to_vulnerabilities().unwrap();
        // The RESERVED item (also lacking CVSS) is skipped.
        assert_eq!(vulns.len(), 1);
        let v = &vulns[0];
        assert_eq!(v.id.to_string(), "CVE-2016-4428");
        assert_eq!(v.published, Date::from_ymd(2016, 7, 1));
        assert_eq!(v.cvss.base_score(), 5.4);
        assert!(v.description.contains("AngularJS template"));
    }

    #[test]
    fn nested_nodes_are_flattened_and_nonvulnerable_skipped() {
        let feed = NvdFeed::parse(SAMPLE).unwrap();
        let v = &feed.to_vulnerabilities().unwrap()[0];
        // 2 horizon ranges + 1 vulnerable debian child, not the hardware entry.
        assert_eq!(v.affected.len(), 3);
        assert!(v.affects(&OsVersion::new(OsFamily::Debian, "8").to_cpe()));
        assert!(v.affects(&Cpe::app("openstack", "horizon", "9.0.1")));
        assert!(!v.affects(&Cpe::app("openstack", "horizon", "9.0.2")));
        assert!(v.affects(&Cpe::app("openstack", "horizon", "8.0.1")));
    }

    #[test]
    fn cross_checks_published_score() {
        let feed = NvdFeed::parse(SAMPLE).unwrap();
        let metric = feed.items[0].impact.base_metric_v3.as_ref().unwrap();
        let recomputed: CvssV3 = metric.cvss_v3.vector_string.parse().unwrap();
        assert_eq!(recomputed.base_score(), metric.cvss_v3.base_score);
    }

    #[test]
    fn roundtrip_through_json() {
        let v = Vulnerability::new(
            CveId::new(2018, 8897),
            Date::from_ymd(2018, 5, 8),
            "CVSS:3.0/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H".parse().unwrap(),
            "A statement in the SDM mishandled by multiple OS kernels.",
        )
        .affecting(AffectedPlatform::exact(OsVersion::new(OsFamily::Ubuntu, "16.04").to_cpe()))
        .affecting(AffectedPlatform::exact(OsVersion::new(OsFamily::Debian, "8").to_cpe()));
        let feed = NvdFeed::from_items(vec![NvdItem::from_vulnerability(&v)]);
        let json = feed.to_json();
        let parsed = NvdFeed::parse(&json).unwrap().to_vulnerabilities().unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].id, v.id);
        assert_eq!(parsed[0].published, v.published);
        assert_eq!(parsed[0].cvss, v.cvss);
        assert_eq!(parsed[0].description, v.description);
        assert_eq!(parsed[0].affected.len(), 2);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(matches!(NvdFeed::parse("{"), Err(FeedError::Json(_))));
        assert!(matches!(NvdFeed::parse("[]"), Err(FeedError::Json(_))));
    }

    #[test]
    fn corrupt_item_is_reported_not_dropped() {
        let mut feed = NvdFeed::parse(SAMPLE).unwrap();
        feed.items[0].cve.meta.id = "NOT-A-CVE".to_string();
        let err = feed.to_vulnerabilities().unwrap_err();
        match err {
            FeedError::Item { cve, detail } => {
                assert_eq!(cve, "NOT-A-CVE");
                assert!(detail.contains("bad CVE id"), "{detail}");
            }
            other => panic!("expected Item error, got {other}"),
        }
    }

    #[test]
    fn feed_counter_matches_items() {
        let feed = NvdFeed::from_items(vec![]);
        assert_eq!(feed.number_of_cves, "0");
        assert_eq!(feed.data_type, "CVE");
    }
}
