//! Real CVE fixtures quoted in the paper.
//!
//! These are the concrete vulnerabilities the paper uses to motivate and
//! illustrate its design: the Table 1 triplet of similar XSS flaws reported
//! against "different" OSes, the May 2018 CVEs that made that month hard to
//! survive (§6.1), and the score-evolution examples of Figure 3. They serve
//! as ground truth for clustering tests and as the inputs of the Figure 3
//! and Table 1 harnesses.

use crate::catalog::{OsFamily, OsVersion};
use crate::cpe::{Cpe, CpeValue, VersionRange};
use crate::date::Date;
use crate::model::{AffectedPlatform, CveId, ExploitRecord, PatchRecord, Vulnerability};

fn horizon(range: VersionRange) -> AffectedPlatform {
    let mut cpe = Cpe::app("openstack", "horizon", "x");
    cpe.version = CpeValue::Any;
    AffectedPlatform { cpe, range }
}

fn on(os: OsVersion) -> AffectedPlatform {
    AffectedPlatform::exact(os.to_cpe())
}

/// Table 1, row 1: CVE-2014-0157 — XSS in the Horizon Orchestration
/// dashboard, reported against OpenSuse 13.
pub fn cve_2014_0157() -> Vulnerability {
    Vulnerability::new(
        CveId::new(2014, 157),
        Date::from_ymd(2014, 4, 3),
        "CVSS:3.0/AV:N/AC:L/PR:N/UI:R/S:C/C:L/I:L/A:N".parse().expect("static"),
        "Cross-site scripting (XSS) vulnerability in the Horizon Orchestration dashboard \
         in OpenStack Dashboard (aka Horizon) 2013.2 before 2013.2.4 and icehouse before \
         icehouse-rc2 allows remote attackers to inject arbitrary web script or HTML via \
         the description field of a Heat template.",
    )
    .affecting(horizon(VersionRange::before("2013.2.4")))
    .affecting(AffectedPlatform::exact(Cpe::os("opensuse", "opensuse", "13.1")))
}

/// Table 1, row 2: CVE-2015-3988 — XSS in OpenStack Dashboard, reported
/// against Solaris 11.2.
pub fn cve_2015_3988() -> Vulnerability {
    Vulnerability::new(
        CveId::new(2015, 3988),
        Date::from_ymd(2015, 5, 27),
        "CVSS:3.0/AV:N/AC:L/PR:L/UI:R/S:C/C:L/I:L/A:N".parse().expect("static"),
        "Multiple cross-site scripting (XSS) vulnerabilities in OpenStack Dashboard \
         (Horizon) 2015.1.0 allow remote authenticated users to inject arbitrary web \
         script or HTML via the metadata to a (1) Glance image, (2) Nova flavor or (3) \
         Host Aggregate.",
    )
    .affecting(horizon(VersionRange {
        end_including: Some("2015.1.0".into()),
        ..Default::default()
    }))
    .affecting(AffectedPlatform::exact(Cpe::os("oracle", "solaris", "11.2")))
}

/// Table 1, row 3: CVE-2016-4428 — XSS in OpenStack Dashboard, reported
/// against Debian 8.0 (and, per Oracle's bulletin, also affecting Solaris).
pub fn cve_2016_4428() -> Vulnerability {
    Vulnerability::new(
        CveId::new(2016, 4428),
        Date::from_ymd(2016, 7, 1),
        "CVSS:3.0/AV:N/AC:L/PR:L/UI:R/S:C/C:L/I:L/A:N".parse().expect("static"),
        "Cross-site scripting (XSS) vulnerability in OpenStack Dashboard (Horizon) 8.0.1 \
         and earlier and 9.0.0 through 9.0.1 allows remote authenticated users to inject \
         arbitrary web script or HTML by injecting an AngularJS template in a dashboard \
         form.",
    )
    .affecting(horizon(VersionRange { end_including: Some("8.0.1".into()), ..Default::default() }))
    .affecting(on(OsVersion::new(OsFamily::Debian, "8")))
}

/// The Table 1 triplet: three CVEs, three "different" OS lists, one
/// underlying weakness.
pub fn table1_triplet() -> Vec<Vulnerability> {
    vec![cve_2014_0157(), cve_2015_3988(), cve_2016_4428()]
}

/// Figure 3(a): CVE-2018-8303 — new, an exploit appears 17 days after
/// publication, no patch in the window (scenario NE).
pub fn cve_2018_8303() -> Vulnerability {
    let mut v = Vulnerability::new(
        CveId::new(2018, 8303),
        Date::from_ymd(2018, 9, 7),
        "CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H".parse().expect("static"),
        "A memory corruption vulnerability exists when a server improperly handles \
         specially crafted requests, leading to remote code execution.",
    );
    v.exploits.push(ExploitRecord {
        published: Date::from_ymd(2018, 9, 24),
        source: "exploit-db".into(),
        verified: true,
    });
    v
}

/// Figure 3(b): CVE-2018-8012 — an exploit four days after publication
/// raises the score to its 9.37 peak, then the patch three days later
/// halves it to ≈ 4.6 (scenario NPE; the paper's annotated values).
pub fn cve_2018_8012() -> Vulnerability {
    let mut v = Vulnerability::new(
        CveId::new(2018, 8012),
        Date::from_ymd(2018, 5, 20),
        "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:H/A:N".parse().expect("static"), // 7.5
        "No authentication/authorization is enforced when a server attempts to join a \
         quorum, allowing arbitrary ensemble reconfiguration.",
    );
    v.exploits.push(ExploitRecord {
        published: Date::from_ymd(2018, 5, 24),
        source: "exploit-db".into(),
        verified: false,
    });
    v.patches.push(PatchRecord {
        product: Cpe::app("apache", "zookeeper", "3.4.12"),
        released: Date::from_ymd(2018, 5, 27),
        advisory: "ZOOKEEPER-3009".into(),
    });
    v
}

/// Figure 3(c): CVE-2016-7180 — old and patched, no exploit (scenario OP).
pub fn cve_2016_7180() -> Vulnerability {
    let mut v = Vulnerability::new(
        CveId::new(2016, 7180),
        Date::from_ymd(2016, 9, 8),
        "CVSS:3.0/AV:L/AC:L/PR:H/UI:N/S:U/C:H/I:H/A:H".parse().expect("static"),
        "A local elevation of privilege exists in how a system service handles objects \
         in memory.",
    );
    v.patches.push(PatchRecord {
        product: Cpe::os("microsoft", "windows", "10"),
        released: Date::from_ymd(2016, 9, 19),
        advisory: "MS16-111".into(),
    });
    v
}

/// §6.1: the May 2018 CVEs that defeated every strategy — kernel flaws
/// shared by Ubuntu and Debian, Windows-wide flaws, and a Fedora/RedHat
/// network-manager flaw.
pub fn may_2018_cluster() -> Vec<Vulnerability> {
    let kernel = |id: CveId, desc: &str, published: Date, oses: &[OsVersion]| {
        let mut v = Vulnerability::new(
            id,
            published,
            "CVSS:3.0/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H".parse().expect("static"),
            desc.to_string(),
        );
        for os in oses {
            v.affected.push(on(*os));
        }
        v
    };
    use OsFamily::*;
    vec![
        kernel(
            CveId::new(2018, 1125),
            "Stack-based buffer overflow in the procps-ng library allows local attackers \
             to cause a denial of service or escalate privileges.",
            Date::from_ymd(2018, 5, 23),
            &[
                OsVersion::new(Ubuntu, "16.04"),
                OsVersion::new(Ubuntu, "17.04"),
                OsVersion::new(Debian, "8"),
                OsVersion::new(Debian, "9"),
            ],
        ),
        kernel(
            CveId::new(2018, 8897),
            "A statement in the System Programming Guide was mishandled in the development \
             of multiple operating system kernels, allowing local users to crash the kernel \
             or escalate privileges via the MOV SS / POP SS instructions.",
            Date::from_ymd(2018, 5, 8),
            &[
                OsVersion::new(Ubuntu, "14.04"),
                OsVersion::new(Ubuntu, "16.04"),
                OsVersion::new(Debian, "8"),
                OsVersion::new(Debian, "9"),
            ],
        ),
        kernel(
            CveId::new(2018, 8134),
            "An elevation of privilege vulnerability exists in the way the Windows kernel \
             handles objects in memory.",
            Date::from_ymd(2018, 5, 8),
            &[OsVersion::new(Windows, "10"), OsVersion::new(Windows, "server_2012")],
        ),
        kernel(
            CveId::new(2018, 959),
            "A remote code execution vulnerability exists when Windows Hyper-V on a host \
             server fails to properly validate input from an authenticated user.",
            Date::from_ymd(2018, 5, 8),
            &[
                OsVersion::new(Windows, "10"),
                OsVersion::new(Windows, "8.1"),
                OsVersion::new(Windows, "server_2012"),
            ],
        ),
        kernel(
            CveId::new(2018, 1111),
            "DHCP packages as shipped include a script that allows a malicious DHCP server \
             to execute arbitrary commands via crafted responses (dhclient integration).",
            Date::from_ymd(2018, 5, 15),
            &[
                OsVersion::new(Fedora, "26"),
                OsVersion::new(Fedora, "25"),
                OsVersion::new(RedHat, "7"),
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_descriptions_are_mutually_similar() {
        let t = table1_triplet();
        assert_eq!(t.len(), 3);
        for v in &t {
            assert!(v.description.contains("XSS"));
            assert!(v.description.to_lowercase().contains("horizon"));
        }
        // Distinct OS platforms, as published.
        assert!(t[0].affects(&Cpe::os("opensuse", "opensuse", "13.1")));
        assert!(t[1].affects(&Cpe::os("oracle", "solaris", "11.2")));
        assert!(t[2].affects(&OsVersion::new(OsFamily::Debian, "8").to_cpe()));
        // No pair shares an OS platform in the published record.
        assert!(!t[0].affects(&OsVersion::new(OsFamily::Debian, "8").to_cpe()));
    }

    #[test]
    fn figure3_lifecycles() {
        let ne = cve_2018_8303();
        assert_eq!(ne.cvss.base_score(), 8.1);
        assert!(ne.patches.is_empty());
        assert_eq!(ne.first_exploit_date(), Some(Date::from_ymd(2018, 9, 24)));

        let npe = cve_2018_8012();
        assert_eq!(npe.cvss.base_score(), 7.5);
        assert!(npe.is_patched(Date::from_ymd(2018, 5, 27)));
        assert!(npe.is_exploited(Date::from_ymd(2018, 5, 24)));
        assert!(!npe.is_exploited(Date::from_ymd(2018, 5, 23)));

        let op = cve_2016_7180();
        assert!(op.is_patched(Date::from_ymd(2016, 9, 19)));
        assert!(op.exploits.is_empty());
    }

    #[test]
    fn may_2018_hits_pairs_across_families() {
        let cluster = may_2018_cluster();
        let v8897 = cluster.iter().find(|v| v.id == CveId::new(2018, 8897)).unwrap();
        assert!(v8897.affects(&OsVersion::new(OsFamily::Ubuntu, "16.04").to_cpe()));
        assert!(v8897.affects(&OsVersion::new(OsFamily::Debian, "9").to_cpe()));
        let v1111 = cluster.iter().find(|v| v.id == CveId::new(2018, 1111)).unwrap();
        assert!(v1111.affects(&OsVersion::new(OsFamily::Fedora, "26").to_cpe()));
        assert!(v1111.affects(&OsVersion::new(OsFamily::RedHat, "7").to_cpe()));
    }

    #[test]
    fn fixtures_roundtrip_through_feed() {
        use crate::feed::{NvdFeed, NvdItem};
        let mut all = table1_triplet();
        all.extend(may_2018_cluster());
        let feed = NvdFeed::from_items(all.iter().map(NvdItem::from_vulnerability).collect());
        let parsed = NvdFeed::parse(&feed.to_json()).unwrap().to_vulnerabilities().unwrap();
        assert_eq!(parsed.len(), all.len());
    }
}
