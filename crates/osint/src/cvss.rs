//! CVSS v3.1 base metrics: vector-string parsing and score computation.
//!
//! The National Vulnerability Database publishes a CVSS vector (e.g.
//! `CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H`) and a base score for every
//! vulnerability. Lazarus uses the base score as the starting factor of its
//! extended metric (paper Eq. 1) and several individual attributes (attack
//! vector, privileges required, impacted security properties) for reporting.
//!
//! This module implements the full v3.1 base-score equation from the FIRST
//! specification, so synthetic feeds can carry internally-consistent vectors
//! and parsed real-world vectors reproduce NVD's published scores.
//!
//! # Examples
//!
//! ```
//! use lazarus_osint::cvss::{CvssV3, Severity};
//!
//! let cvss: CvssV3 = "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H".parse()?;
//! assert_eq!(cvss.base_score(), 9.8);
//! assert_eq!(cvss.severity(), Severity::Critical);
//! # Ok::<(), lazarus_osint::cvss::ParseCvssError>(())
//! ```

use std::fmt;
use std::str::FromStr;

/// Attack Vector (AV): where the attacker must be to exploit the flaw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackVector {
    /// `AV:N` — exploitable across the network (most severe).
    Network,
    /// `AV:A` — requires adjacent-network access.
    Adjacent,
    /// `AV:L` — requires local access.
    Local,
    /// `AV:P` — requires physical access.
    Physical,
}

/// Attack Complexity (AC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackComplexity {
    /// `AC:L` — no specialised conditions required.
    Low,
    /// `AC:H` — attack depends on conditions beyond the attacker's control.
    High,
}

/// Privileges Required (PR).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrivilegesRequired {
    /// `PR:N` — unauthenticated.
    None,
    /// `PR:L` — basic user privileges.
    Low,
    /// `PR:H` — administrative privileges.
    High,
}

/// User Interaction (UI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UserInteraction {
    /// `UI:N` — no user participation needed.
    None,
    /// `UI:R` — a user must take some action.
    Required,
}

/// Scope (S): whether the exploit escapes the vulnerable component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scope {
    /// `S:U` — impact confined to the vulnerable component.
    Unchanged,
    /// `S:C` — impact extends beyond the vulnerable component.
    Changed,
}

/// Impact level for each of the C/I/A security properties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Impact {
    /// `H` — total loss of the property.
    High,
    /// `L` — partial loss.
    Low,
    /// `N` — no impact.
    None,
}

/// Qualitative severity rating derived from the base score
/// (spec section 5, also quoted in paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// 0.0
    None,
    /// 0.1 – 3.9
    Low,
    /// 4.0 – 6.9
    Medium,
    /// 7.0 – 8.9
    High,
    /// 9.0 – 10.0
    Critical,
}

impl Severity {
    /// Classifies a score into its qualitative band.
    ///
    /// # Panics
    ///
    /// Panics if `score` is outside `0.0..=10.0`.
    pub fn from_score(score: f64) -> Severity {
        assert!((0.0..=10.0).contains(&score), "score {score} out of range");
        if score == 0.0 {
            Severity::None
        } else if score < 4.0 {
            Severity::Low
        } else if score < 7.0 {
            Severity::Medium
        } else if score < 9.0 {
            Severity::High
        } else {
            Severity::Critical
        }
    }

    /// Lower bound of this band, used by Algorithm 1 (`maxScore ← HIGH`).
    pub fn floor(self) -> f64 {
        match self {
            Severity::None => 0.0,
            Severity::Low => 0.1,
            Severity::Medium => 4.0,
            Severity::High => 7.0,
            Severity::Critical => 9.0,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::None => "NONE",
            Severity::Low => "LOW",
            Severity::Medium => "MEDIUM",
            Severity::High => "HIGH",
            Severity::Critical => "CRITICAL",
        };
        f.write_str(s)
    }
}

/// A complete CVSS v3.1 base-metric group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CvssV3 {
    /// Attack Vector.
    pub av: AttackVector,
    /// Attack Complexity.
    pub ac: AttackComplexity,
    /// Privileges Required.
    pub pr: PrivilegesRequired,
    /// User Interaction.
    pub ui: UserInteraction,
    /// Scope.
    pub s: Scope,
    /// Confidentiality impact.
    pub c: Impact,
    /// Integrity impact.
    pub i: Impact,
    /// Availability impact.
    pub a: Impact,
}

impl CvssV3 {
    /// The canonical worst-case vector (`9.8 CRITICAL`), a convenient default
    /// for tests and synthetic worst-case vulnerabilities.
    pub const CRITICAL_RCE: CvssV3 = CvssV3 {
        av: AttackVector::Network,
        ac: AttackComplexity::Low,
        pr: PrivilegesRequired::None,
        ui: UserInteraction::None,
        s: Scope::Unchanged,
        c: Impact::High,
        i: Impact::High,
        a: Impact::High,
    };

    /// Base score per the v3.1 specification, rounded up to one decimal.
    pub fn base_score(&self) -> f64 {
        let iss = self.impact_subscore_raw();
        let impact = self.impact_subscore();
        if impact <= 0.0 {
            return 0.0;
        }
        let _ = iss;
        let expl = self.exploitability_subscore();
        let raw = match self.s {
            Scope::Unchanged => (impact + expl).min(10.0),
            Scope::Changed => (1.08 * (impact + expl)).min(10.0),
        };
        round_up_1(raw)
    }

    /// The exploitability sub-score, `8.22 × AV × AC × PR × UI`.
    pub fn exploitability_subscore(&self) -> f64 {
        8.22 * self.av_weight() * self.ac_weight() * self.pr_weight() * self.ui_weight()
    }

    /// The impact sub-score after the scope adjustment.
    pub fn impact_subscore(&self) -> f64 {
        let iss = self.impact_subscore_raw();
        match self.s {
            Scope::Unchanged => 6.42 * iss,
            Scope::Changed => 7.52 * (iss - 0.029) - 3.25 * (iss - 0.02).powi(15),
        }
    }

    /// Qualitative severity of [`base_score`](Self::base_score).
    pub fn severity(&self) -> Severity {
        Severity::from_score(self.base_score())
    }

    /// True if the vulnerability can be triggered remotely without
    /// authentication — the profile of the wormable flaws (WannaCry, Petya)
    /// studied in paper §6.2.
    pub fn is_remote_unauthenticated(&self) -> bool {
        self.av == AttackVector::Network && self.pr == PrivilegesRequired::None
    }

    fn impact_subscore_raw(&self) -> f64 {
        let c = impact_weight(self.c);
        let i = impact_weight(self.i);
        let a = impact_weight(self.a);
        1.0 - (1.0 - c) * (1.0 - i) * (1.0 - a)
    }

    fn av_weight(&self) -> f64 {
        match self.av {
            AttackVector::Network => 0.85,
            AttackVector::Adjacent => 0.62,
            AttackVector::Local => 0.55,
            AttackVector::Physical => 0.2,
        }
    }

    fn ac_weight(&self) -> f64 {
        match self.ac {
            AttackComplexity::Low => 0.77,
            AttackComplexity::High => 0.44,
        }
    }

    fn pr_weight(&self) -> f64 {
        match (self.pr, self.s) {
            (PrivilegesRequired::None, _) => 0.85,
            (PrivilegesRequired::Low, Scope::Unchanged) => 0.62,
            (PrivilegesRequired::Low, Scope::Changed) => 0.68,
            (PrivilegesRequired::High, Scope::Unchanged) => 0.27,
            (PrivilegesRequired::High, Scope::Changed) => 0.5,
        }
    }

    fn ui_weight(&self) -> f64 {
        match self.ui {
            UserInteraction::None => 0.85,
            UserInteraction::Required => 0.62,
        }
    }
}

fn impact_weight(i: Impact) -> f64 {
    match i {
        Impact::High => 0.56,
        Impact::Low => 0.22,
        Impact::None => 0.0,
    }
}

/// The v3.1 "Roundup" helper: smallest number with one decimal place that is
/// greater than or equal to the input, computed with the spec's integer trick
/// to avoid floating-point artefacts.
fn round_up_1(x: f64) -> f64 {
    let int_input = (x * 100_000.0).round() as i64;
    if int_input % 10_000 == 0 {
        int_input as f64 / 100_000.0
    } else {
        ((int_input / 10_000) as f64 + 1.0) / 10.0
    }
}

impl fmt::Display for CvssV3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let av = match self.av {
            AttackVector::Network => 'N',
            AttackVector::Adjacent => 'A',
            AttackVector::Local => 'L',
            AttackVector::Physical => 'P',
        };
        let ac = match self.ac {
            AttackComplexity::Low => 'L',
            AttackComplexity::High => 'H',
        };
        let pr = match self.pr {
            PrivilegesRequired::None => 'N',
            PrivilegesRequired::Low => 'L',
            PrivilegesRequired::High => 'H',
        };
        let ui = match self.ui {
            UserInteraction::None => 'N',
            UserInteraction::Required => 'R',
        };
        let s = match self.s {
            Scope::Unchanged => 'U',
            Scope::Changed => 'C',
        };
        let cia = |x: Impact| match x {
            Impact::High => 'H',
            Impact::Low => 'L',
            Impact::None => 'N',
        };
        write!(
            f,
            "CVSS:3.1/AV:{av}/AC:{ac}/PR:{pr}/UI:{ui}/S:{s}/C:{}/I:{}/A:{}",
            cia(self.c),
            cia(self.i),
            cia(self.a)
        )
    }
}

/// Error returned when a CVSS vector string cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCvssError {
    detail: String,
}

impl ParseCvssError {
    fn new(detail: impl Into<String>) -> Self {
        ParseCvssError { detail: detail.into() }
    }
}

impl fmt::Display for ParseCvssError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid CVSS v3 vector: {}", self.detail)
    }
}

impl std::error::Error for ParseCvssError {}

impl FromStr for CvssV3 {
    type Err = ParseCvssError;

    /// Parses a v3.0/v3.1 vector string. The `CVSS:3.x/` prefix is optional;
    /// metrics may appear in any order but all eight base metrics must be
    /// present exactly once.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let body = s.strip_prefix("CVSS:3.1/").or_else(|| s.strip_prefix("CVSS:3.0/")).unwrap_or(s);
        let (mut av, mut ac, mut pr, mut ui) = (None, None, None, None);
        let (mut sc, mut c, mut i, mut a) = (None, None, None, None);
        for part in body.split('/') {
            let (key, val) = part
                .split_once(':')
                .ok_or_else(|| ParseCvssError::new(format!("metric {part:?} missing ':'")))?;
            let dup = |name: &str| ParseCvssError::new(format!("duplicate metric {name}"));
            let badv = || ParseCvssError::new(format!("bad value {val:?} for {key}"));
            match key {
                "AV" => {
                    let v = match val {
                        "N" => AttackVector::Network,
                        "A" => AttackVector::Adjacent,
                        "L" => AttackVector::Local,
                        "P" => AttackVector::Physical,
                        _ => return Err(badv()),
                    };
                    if av.replace(v).is_some() {
                        return Err(dup("AV"));
                    }
                }
                "AC" => {
                    let v = match val {
                        "L" => AttackComplexity::Low,
                        "H" => AttackComplexity::High,
                        _ => return Err(badv()),
                    };
                    if ac.replace(v).is_some() {
                        return Err(dup("AC"));
                    }
                }
                "PR" => {
                    let v = match val {
                        "N" => PrivilegesRequired::None,
                        "L" => PrivilegesRequired::Low,
                        "H" => PrivilegesRequired::High,
                        _ => return Err(badv()),
                    };
                    if pr.replace(v).is_some() {
                        return Err(dup("PR"));
                    }
                }
                "UI" => {
                    let v = match val {
                        "N" => UserInteraction::None,
                        "R" => UserInteraction::Required,
                        _ => return Err(badv()),
                    };
                    if ui.replace(v).is_some() {
                        return Err(dup("UI"));
                    }
                }
                "S" => {
                    let v = match val {
                        "U" => Scope::Unchanged,
                        "C" => Scope::Changed,
                        _ => return Err(badv()),
                    };
                    if sc.replace(v).is_some() {
                        return Err(dup("S"));
                    }
                }
                "C" | "I" | "A" => {
                    let v = match val {
                        "H" => Impact::High,
                        "L" => Impact::Low,
                        "N" => Impact::None,
                        _ => return Err(badv()),
                    };
                    let slot = match key {
                        "C" => &mut c,
                        "I" => &mut i,
                        _ => &mut a,
                    };
                    if slot.replace(v).is_some() {
                        return Err(dup(key));
                    }
                }
                // Temporal/environmental metrics are tolerated and ignored.
                "E" | "RL" | "RC" | "CR" | "IR" | "AR" | "MAV" | "MAC" | "MPR" | "MUI" | "MS"
                | "MC" | "MI" | "MA" => {}
                _ => return Err(ParseCvssError::new(format!("unknown metric {key:?}"))),
            }
        }
        let missing = |name: &str| ParseCvssError::new(format!("missing metric {name}"));
        Ok(CvssV3 {
            av: av.ok_or_else(|| missing("AV"))?,
            ac: ac.ok_or_else(|| missing("AC"))?,
            pr: pr.ok_or_else(|| missing("PR"))?,
            ui: ui.ok_or_else(|| missing("UI"))?,
            s: sc.ok_or_else(|| missing("S"))?,
            c: c.ok_or_else(|| missing("C"))?,
            i: i.ok_or_else(|| missing("I"))?,
            a: a.ok_or_else(|| missing("A"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score(vector: &str) -> f64 {
        vector.parse::<CvssV3>().unwrap().base_score()
    }

    /// Vectors and scores cross-checked against NVD entries.
    #[test]
    fn known_nvd_scores() {
        // CVE-2017-0144 (EternalBlue / WannaCry vector)
        assert_eq!(score("CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H"), 8.1);
        // Classic unauthenticated RCE
        assert_eq!(score("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"), 9.8);
        // CVE-2018-8897 (pop SS) style local flaw
        assert_eq!(score("CVSS:3.0/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H"), 7.8);
        // Scope-changed XSS (Table 1 family)
        assert_eq!(score("CVSS:3.0/AV:N/AC:L/PR:L/UI:R/S:C/C:L/I:L/A:N"), 5.4);
        // Information disclosure, network, no privileges
        assert_eq!(score("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:L/I:N/A:N"), 5.3);
        // Scope changed critical
        assert_eq!(score("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H"), 10.0);
        // CVE-2016-7180 style local high-privilege flaw
        assert_eq!(score("CVSS:3.0/AV:L/AC:L/PR:H/UI:N/S:U/C:H/I:H/A:H"), 6.7);
    }

    #[test]
    fn zero_impact_is_zero_score() {
        assert_eq!(score("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:N"), 0.0);
        assert_eq!(
            "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:N".parse::<CvssV3>().unwrap().severity(),
            Severity::None
        );
    }

    #[test]
    fn severity_bands() {
        assert_eq!(Severity::from_score(0.0), Severity::None);
        assert_eq!(Severity::from_score(3.9), Severity::Low);
        assert_eq!(Severity::from_score(4.0), Severity::Medium);
        assert_eq!(Severity::from_score(6.9), Severity::Medium);
        assert_eq!(Severity::from_score(7.0), Severity::High);
        assert_eq!(Severity::from_score(9.0), Severity::Critical);
        assert_eq!(Severity::from_score(10.0), Severity::Critical);
        assert!(Severity::High < Severity::Critical);
    }

    #[test]
    fn display_roundtrips() {
        let v = "CVSS:3.1/AV:N/AC:H/PR:L/UI:R/S:C/C:H/I:L/A:N";
        let parsed: CvssV3 = v.parse().unwrap();
        assert_eq!(parsed.to_string(), v);
        let reparsed: CvssV3 = parsed.to_string().parse().unwrap();
        assert_eq!(parsed, reparsed);
    }

    #[test]
    fn prefix_is_optional_and_order_free() {
        let a: CvssV3 = "AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H".parse().unwrap();
        let b: CvssV3 = "CVSS:3.1/A:H/I:H/C:H/S:U/UI:N/PR:N/AC:L/AV:N".parse().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "CVSS:3.1/AV:N",                                     // missing metrics
            "CVSS:3.1/AV:X/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",      // bad value
            "CVSS:3.1/AV:N/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", // duplicate
            "CVSS:3.1/QQ:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",      // unknown metric
            "AV-N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",               // missing colon
        ] {
            assert!(bad.parse::<CvssV3>().is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn temporal_metrics_tolerated() {
        let v: CvssV3 = "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H/E:F/RL:O".parse().unwrap();
        assert_eq!(v.base_score(), 9.8);
    }

    #[test]
    fn roundup_matches_spec_examples() {
        assert_eq!(round_up_1(4.02), 4.1);
        assert_eq!(round_up_1(4.0), 4.0);
        // The spec's integer trick first rounds to 5 decimals so float
        // artefacts like 4.0000004 do NOT bump the score...
        assert_eq!(round_up_1(4.000001), 4.0);
        // ...but anything at or above a 10^-5 excess does.
        assert_eq!(round_up_1(4.0001), 4.1);
    }

    #[test]
    fn remote_unauthenticated_predicate() {
        assert!(CvssV3::CRITICAL_RCE.is_remote_unauthenticated());
        let local: CvssV3 = "CVSS:3.0/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H".parse().unwrap();
        assert!(!local.is_remote_unauthenticated());
    }

    #[test]
    fn subscores_are_positive_for_critical() {
        let v = CvssV3::CRITICAL_RCE;
        assert!(v.exploitability_subscore() > 3.8 && v.exploitability_subscore() < 4.0);
        assert!(v.impact_subscore() > 5.8 && v.impact_subscore() < 6.1);
    }
}
