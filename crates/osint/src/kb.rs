//! The vulnerability knowledge base.
//!
//! The Lazarus prototype stores collected intelligence in a MySQL database
//! (paper §5.1); here the knowledge base is an in-memory indexed store with
//! the same query surface: per-CVE lookup, per-product applicability, date
//! ranges, and the pairwise shared-vulnerability query at the heart of the
//! risk metric (Eq. 5).

use std::collections::BTreeMap;

use crate::cpe::Cpe;
use crate::date::Date;
use crate::model::{CveId, Vulnerability};
use crate::sources::{Enrichment, EnrichmentKind};

/// An in-memory vulnerability store with product filtering.
///
/// When constructed with [`KnowledgeBase::for_products`], only
/// vulnerabilities affecting one of the monitored products are retained —
/// mirroring the administrator's product selection from the CPE dictionary.
#[derive(Debug, Clone, Default)]
pub struct KnowledgeBase {
    vulns: BTreeMap<CveId, Vulnerability>,
    monitored: Vec<Cpe>,
    /// Enrichments whose CVE was unknown at application time; kept for a
    /// later feed round (sources and NVD are not synchronized).
    pending: Vec<Enrichment>,
}

impl KnowledgeBase {
    /// An unfiltered knowledge base (keeps everything).
    pub fn new() -> KnowledgeBase {
        KnowledgeBase::default()
    }

    /// A knowledge base monitoring only the given products.
    pub fn for_products(products: impl IntoIterator<Item = Cpe>) -> KnowledgeBase {
        KnowledgeBase { monitored: products.into_iter().collect(), ..Default::default() }
    }

    /// The monitored product list (empty means "everything").
    pub fn monitored_products(&self) -> &[Cpe] {
        &self.monitored
    }

    /// Whether a vulnerability is relevant to the monitored products.
    fn relevant(&self, v: &Vulnerability) -> bool {
        self.monitored.is_empty() || self.monitored.iter().any(|p| v.affects(p))
    }

    /// Inserts or merges a vulnerability. Returns `true` if it was retained
    /// (relevant to the monitored products).
    ///
    /// Merging keeps the earliest publication date and unions the affected
    /// platform, patch and exploit lists — repeated feed syncs are
    /// idempotent.
    pub fn upsert(&mut self, v: Vulnerability) -> bool {
        if !self.relevant(&v) {
            return false;
        }
        let id = v.id;
        match self.vulns.get_mut(&id) {
            None => {
                self.vulns.insert(id, v);
            }
            Some(existing) => {
                existing.published = existing.published.min(v.published);
                existing.cvss = v.cvss;
                if !v.description.is_empty() {
                    existing.description = v.description;
                }
                for p in v.affected {
                    if !existing.affected.contains(&p) {
                        existing.affected.push(p);
                    }
                }
                for p in v.patches {
                    if !existing.patches.contains(&p) {
                        existing.patches.push(p);
                    }
                }
                for e in v.exploits {
                    if !existing.exploits.contains(&e) {
                        existing.exploits.push(e);
                    }
                }
            }
        }
        // A new record may make buffered enrichments applicable.
        let pending = std::mem::take(&mut self.pending);
        for e in pending {
            self.apply_enrichment(e);
        }
        true
    }

    /// Applies an enrichment from a secondary source. Unknown CVEs are
    /// buffered and retried on the next [`upsert`](Self::upsert). Returns
    /// `true` when applied immediately.
    pub fn apply_enrichment(&mut self, e: Enrichment) -> bool {
        match self.vulns.get_mut(&e.cve) {
            Some(v) => {
                e.apply(v);
                true
            }
            None => {
                // Platform facts can make a filtered-out CVE relevant later;
                // keep everything until the CVE itself shows up.
                if !matches!(e.kind, EnrichmentKind::AdditionalPlatform(_))
                    || !self.monitored.is_empty()
                {
                    self.pending.push(e);
                }
                false
            }
        }
    }

    /// Number of stored vulnerabilities.
    pub fn len(&self) -> usize {
        self.vulns.len()
    }

    /// True when no vulnerabilities are stored.
    pub fn is_empty(&self) -> bool {
        self.vulns.is_empty()
    }

    /// Number of buffered, not-yet-applicable enrichments.
    pub fn pending_enrichments(&self) -> usize {
        self.pending.len()
    }

    /// Looks up one vulnerability.
    pub fn get(&self, id: CveId) -> Option<&Vulnerability> {
        self.vulns.get(&id)
    }

    /// Iterates over all vulnerabilities in CVE order.
    pub fn iter(&self) -> impl Iterator<Item = &Vulnerability> {
        self.vulns.values()
    }

    /// All vulnerabilities affecting `product`.
    pub fn affecting<'a>(&'a self, product: &'a Cpe) -> impl Iterator<Item = &'a Vulnerability> {
        self.iter().filter(move |v| v.affects(product))
    }

    /// All vulnerabilities published in `[from, to]`.
    pub fn published_between(&self, from: Date, to: Date) -> impl Iterator<Item = &Vulnerability> {
        self.iter().filter(move |v| v.published >= from && v.published <= to)
    }

    /// Vulnerabilities NVD lists as affecting *both* products — the direct
    /// component of `V(ri, rj)` in Eq. 5 (cluster-inferred sharing is added
    /// by `lazarus-risk`).
    pub fn shared<'a>(&'a self, a: &'a Cpe, b: &'a Cpe) -> impl Iterator<Item = &'a Vulnerability> {
        self.iter().filter(move |v| v.affects(a) && v.affects(b))
    }

    /// Restricts the view to vulnerabilities known at `on` (published on or
    /// before that day) — used to rebuild the historical knowledge of a
    /// given simulation day.
    pub fn known_at(&self, on: Date) -> impl Iterator<Item = &Vulnerability> {
        self.iter().filter(move |v| v.published <= on)
    }
}

impl Extend<Vulnerability> for KnowledgeBase {
    fn extend<T: IntoIterator<Item = Vulnerability>>(&mut self, iter: T) {
        for v in iter {
            self.upsert(v);
        }
    }
}

impl FromIterator<Vulnerability> for KnowledgeBase {
    fn from_iter<T: IntoIterator<Item = Vulnerability>>(iter: T) -> Self {
        let mut kb = KnowledgeBase::new();
        kb.extend(iter);
        kb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{OsFamily, OsVersion};
    use crate::cvss::CvssV3;
    use crate::model::{AffectedPlatform, ExploitRecord};

    fn os(f: OsFamily, v: &'static str) -> Cpe {
        OsVersion::new(f, v).to_cpe()
    }

    fn vuln(id: u32, oses: &[Cpe]) -> Vulnerability {
        let mut v = Vulnerability::new(
            CveId::new(2018, id),
            Date::from_ymd(2018, 3, 1),
            CvssV3::CRITICAL_RCE,
            format!("synthetic flaw {id}"),
        );
        for o in oses {
            v.affected.push(AffectedPlatform::exact(o.clone()));
        }
        v
    }

    #[test]
    fn upsert_and_query() {
        let ub = os(OsFamily::Ubuntu, "16.04");
        let de = os(OsFamily::Debian, "8");
        let fb = os(OsFamily::FreeBsd, "11");
        let mut kb = KnowledgeBase::new();
        kb.upsert(vuln(1, &[ub.clone(), de.clone()]));
        kb.upsert(vuln(2, std::slice::from_ref(&fb)));
        assert_eq!(kb.len(), 2);
        assert_eq!(kb.affecting(&ub).count(), 1);
        assert_eq!(kb.shared(&ub, &de).count(), 1);
        assert_eq!(kb.shared(&ub, &fb).count(), 0);
    }

    #[test]
    fn merge_is_idempotent_and_unions() {
        let ub = os(OsFamily::Ubuntu, "16.04");
        let de = os(OsFamily::Debian, "8");
        let mut kb = KnowledgeBase::new();
        kb.upsert(vuln(1, std::slice::from_ref(&ub)));
        kb.upsert(vuln(1, &[ub.clone(), de.clone()]));
        kb.upsert(vuln(1, std::slice::from_ref(&ub)));
        assert_eq!(kb.len(), 1);
        let v = kb.get(CveId::new(2018, 1)).unwrap();
        assert_eq!(v.affected.len(), 2);
    }

    #[test]
    fn merge_keeps_earliest_publication() {
        let ub = os(OsFamily::Ubuntu, "16.04");
        let mut kb = KnowledgeBase::new();
        let mut early = vuln(1, std::slice::from_ref(&ub));
        early.published = Date::from_ymd(2018, 1, 1);
        kb.upsert(vuln(1, std::slice::from_ref(&ub)));
        kb.upsert(early);
        assert_eq!(kb.get(CveId::new(2018, 1)).unwrap().published, Date::from_ymd(2018, 1, 1));
    }

    #[test]
    fn product_filter_drops_irrelevant() {
        let ub = os(OsFamily::Ubuntu, "16.04");
        let fb = os(OsFamily::FreeBsd, "11");
        let mut kb = KnowledgeBase::for_products([ub.clone()]);
        assert!(kb.upsert(vuln(1, std::slice::from_ref(&ub))));
        assert!(!kb.upsert(vuln(2, &[fb])));
        assert_eq!(kb.len(), 1);
    }

    #[test]
    fn enrichment_buffering() {
        let ub = os(OsFamily::Ubuntu, "16.04");
        let mut kb = KnowledgeBase::new();
        let e = Enrichment {
            cve: CveId::new(2018, 1),
            source: "exploit-db",
            kind: EnrichmentKind::Exploit(ExploitRecord {
                published: Date::from_ymd(2018, 3, 10),
                source: "exploit-db".into(),
                verified: true,
            }),
        };
        assert!(!kb.apply_enrichment(e));
        assert_eq!(kb.pending_enrichments(), 1);
        // Once the CVE arrives, the buffered exploit is applied.
        kb.upsert(vuln(1, &[ub]));
        assert_eq!(kb.pending_enrichments(), 0);
        let v = kb.get(CveId::new(2018, 1)).unwrap();
        assert!(v.is_exploited(Date::from_ymd(2018, 3, 10)));
    }

    #[test]
    fn known_at_windows_history() {
        let ub = os(OsFamily::Ubuntu, "16.04");
        let mut kb = KnowledgeBase::new();
        let mut old = vuln(1, std::slice::from_ref(&ub));
        old.published = Date::from_ymd(2016, 1, 1);
        kb.upsert(old);
        kb.upsert(vuln(2, std::slice::from_ref(&ub)));
        assert_eq!(kb.known_at(Date::from_ymd(2017, 1, 1)).count(), 1);
        assert_eq!(kb.known_at(Date::from_ymd(2018, 12, 1)).count(), 2);
        assert_eq!(
            kb.published_between(Date::from_ymd(2018, 1, 1), Date::from_ymd(2018, 12, 31)).count(),
            1
        );
    }

    #[test]
    fn collect_from_iterator() {
        let ub = os(OsFamily::Ubuntu, "16.04");
        let kb: KnowledgeBase =
            vec![vuln(1, std::slice::from_ref(&ub)), vuln(2, &[ub])].into_iter().collect();
        assert_eq!(kb.len(), 2);
        assert!(!kb.is_empty());
    }
}
