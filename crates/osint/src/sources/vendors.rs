//! Vendor advisory sources: Ubuntu, Debian, RedHat, Oracle (Solaris),
//! FreeBSD and Microsoft.
//!
//! Each vendor publishes security advisories in its own house format; the
//! parsers here scrape the formats the Lazarus prototype supported
//! (paper §5.1). Advisories yield [`EnrichmentKind::Patch`] records — the
//! patch date drives Eq. 3 — and, for Oracle's CVE-to-advisory map, also
//! [`EnrichmentKind::AdditionalPlatform`] facts: the paper's motivating
//! example is that Oracle's bulletin revealed CVE-2016-4428 also affects
//! Solaris even though NVD's CPE list omits it.

use crate::cpe::{Cpe, CpeValue};
use crate::date::Date;
use crate::model::{AffectedPlatform, CveId, PatchRecord};

use super::html::extract_text;
use super::{Enrichment, EnrichmentKind, OsintSource, SourceError};

/// A vendor advisory as produced by the synthetic world generator, rendered
/// by each source into its native document format.
#[derive(Debug, Clone)]
pub struct AdvisoryEntry {
    /// Advisory identifier (`USN-3641-1`, `DSA-4196-1`, `RHSA-2018:1318`…).
    pub advisory: String,
    /// Short subject (package or component).
    pub subject: String,
    /// Release date of the fix.
    pub date: Date,
    /// CVEs the advisory fixes.
    pub cves: Vec<CveId>,
    /// Affected product versions, vendor notation (e.g. `16.04`, `11.2`).
    pub versions: Vec<String>,
}

/// A product CPE whose version field is a wildcard — vendor advisories
/// usually cover "all supported releases" unless versions are listed.
fn product_cpe(vendor: &str, product: &str) -> Cpe {
    let mut cpe = Cpe::os(vendor, product, "x");
    cpe.version = CpeValue::Any;
    cpe
}

fn month_number(name: &str) -> Option<u32> {
    const MONTHS: [&str; 12] =
        ["jan", "feb", "mar", "apr", "may", "jun", "jul", "aug", "sep", "oct", "nov", "dec"];
    let lower = name.to_ascii_lowercase();
    MONTHS.iter().position(|m| lower.starts_with(m)).map(|i| i as u32 + 1)
}

fn month_name(m: u32) -> &'static str {
    const MONTHS: [&str; 12] = [
        "January",
        "February",
        "March",
        "April",
        "May",
        "June",
        "July",
        "August",
        "September",
        "October",
        "November",
        "December",
    ];
    MONTHS[(m - 1) as usize]
}

/// Parses `20 May 2018` or `May 20, 2018` into a [`Date`].
fn parse_human_date(s: &str) -> Option<Date> {
    let cleaned: String = s.chars().map(|c| if c == ',' { ' ' } else { c }).collect();
    let parts: Vec<&str> = cleaned.split_whitespace().collect();
    if parts.len() != 3 {
        return None;
    }
    let (d, m, y) = if parts[0].chars().all(|c| c.is_ascii_digit()) {
        (parts[0], parts[1], parts[2]) // 20 May 2018
    } else {
        (parts[1], parts[0], parts[2]) // May 20, 2018
    };
    let day: u32 = d.parse().ok()?;
    let month = month_number(m)?;
    let year: i32 = y.parse().ok()?;
    Date::try_from_ymd(year, month, day)
}

fn scan_cves(text: &str) -> Vec<CveId> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("CVE-") {
        let candidate: String =
            rest[pos..].chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '-').collect();
        if let Ok(id) = candidate.parse::<CveId>() {
            if !out.contains(&id) {
                out.push(id);
            }
        }
        rest = &rest[pos + 4..];
    }
    out
}

macro_rules! document_source {
    ($name:ident) => {
        impl $name {
            /// Creates the source over a raw document.
            pub fn new(document: impl Into<String>) -> Self {
                Self { document: document.into() }
            }

            /// Replaces the document (a crawler refresh).
            pub fn set_document(&mut self, document: impl Into<String>) {
                self.document = document.into();
            }
        }
    };
}

// ---------------------------------------------------------------------------
// Ubuntu Security Notices
// ---------------------------------------------------------------------------

/// Ubuntu Security Notices (`usn.ubuntu.com`), an HTML listing.
#[derive(Debug, Clone, Default)]
pub struct UbuntuSource {
    document: String,
}
document_source!(UbuntuSource);

impl UbuntuSource {
    /// Renders advisories as a USN index page.
    pub fn render(entries: &[AdvisoryEntry]) -> String {
        let mut html = String::from("<html><body><div id=\"usn-list\">\n");
        for e in entries {
            let (_, m, d) = e.date.ymd();
            html.push_str(&format!(
                "<div class=\"usn\"><h3>{}: {} vulnerabilities</h3>\
                 <p class=\"date\">{} {} {}</p><p class=\"releases\">{}</p>\
                 <p class=\"cves\">{}</p></div>\n",
                e.advisory,
                e.subject,
                d,
                month_name(m),
                e.date.year(),
                e.versions.iter().map(|v| format!("Ubuntu {v}")).collect::<Vec<_>>().join(", "),
                e.cves.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(", "),
            ));
        }
        html.push_str("</div></body></html>\n");
        html
    }
}

impl OsintSource for UbuntuSource {
    fn name(&self) -> &'static str {
        "ubuntu-usn"
    }

    fn fetch(&self, since: Date) -> Result<Vec<Enrichment>, SourceError> {
        let text = extract_text(&self.document);
        let mut out = Vec::new();
        let mut lines = text.lines().peekable();
        while let Some(line) = lines.next() {
            if !line.starts_with("USN-") {
                continue;
            }
            let advisory = line.split(':').next().unwrap_or(line).trim().to_string();
            let date_line = lines.next().ok_or_else(|| {
                SourceError::new("ubuntu-usn", format!("{advisory}: missing date"))
            })?;
            let date = parse_human_date(date_line).ok_or_else(|| {
                SourceError::new("ubuntu-usn", format!("{advisory}: bad date {date_line:?}"))
            })?;
            let versions_line = lines.next().unwrap_or("");
            let cves_line = lines.next().unwrap_or("");
            if date < since {
                continue;
            }
            let versions: Vec<&str> =
                versions_line.split(',').filter_map(|v| v.trim().strip_prefix("Ubuntu ")).collect();
            for cve in scan_cves(cves_line) {
                if versions.is_empty() {
                    out.push(Enrichment {
                        cve,
                        source: "ubuntu-usn",
                        kind: EnrichmentKind::Patch(PatchRecord {
                            product: product_cpe("canonical", "ubuntu_linux"),
                            released: date,
                            advisory: advisory.clone(),
                        }),
                    });
                }
                for v in &versions {
                    out.push(Enrichment {
                        cve,
                        source: "ubuntu-usn",
                        kind: EnrichmentKind::Patch(PatchRecord {
                            product: Cpe::os("canonical", "ubuntu_linux", v),
                            released: date,
                            advisory: advisory.clone(),
                        }),
                    });
                }
            }
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Debian Security Advisories (plain-text DSA list)
// ---------------------------------------------------------------------------

/// The Debian security tracker's DSA list — a plain-text format:
///
/// ```text
/// [20 May 2018] DSA-4196-1 linux - security update
///     {CVE-2018-8897 CVE-2018-1087}
/// ```
#[derive(Debug, Clone, Default)]
pub struct DebianSource {
    document: String,
}
document_source!(DebianSource);

impl DebianSource {
    /// Renders advisories in DSA-list format.
    pub fn render(entries: &[AdvisoryEntry]) -> String {
        let mut out = String::new();
        for e in entries {
            let (_, m, d) = e.date.ymd();
            out.push_str(&format!(
                "[{:02} {} {}] {} {} - security update\n\t{{{}}}\n",
                d,
                &month_name(m)[..3],
                e.date.year(),
                e.advisory,
                e.subject,
                e.cves.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(" "),
            ));
        }
        out
    }
}

impl OsintSource for DebianSource {
    fn name(&self) -> &'static str {
        "debian-dsa"
    }

    fn fetch(&self, since: Date) -> Result<Vec<Enrichment>, SourceError> {
        let mut out = Vec::new();
        let mut current: Option<(String, Date)> = None;
        for line in self.document.lines() {
            let trimmed = line.trim();
            if trimmed.starts_with('[') {
                let close = trimmed.find(']').ok_or_else(|| {
                    SourceError::new("debian-dsa", format!("unterminated date in {trimmed:?}"))
                })?;
                let date = parse_human_date(&trimmed[1..close]).ok_or_else(|| {
                    SourceError::new("debian-dsa", format!("bad date in {trimmed:?}"))
                })?;
                let advisory =
                    trimmed[close + 1..].split_whitespace().next().unwrap_or("DSA-?").to_string();
                current = Some((advisory, date));
            } else if trimmed.starts_with('{') {
                let Some((advisory, date)) = current.clone() else { continue };
                if date < since {
                    continue;
                }
                for cve in scan_cves(trimmed) {
                    out.push(Enrichment {
                        cve,
                        source: "debian-dsa",
                        kind: EnrichmentKind::Patch(PatchRecord {
                            product: product_cpe("debian", "debian_linux"),
                            released: date,
                            advisory: advisory.clone(),
                        }),
                    });
                }
            }
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// RedHat CVE database (HTML table)
// ---------------------------------------------------------------------------

/// RedHat's CVE database pages: an HTML table of
/// `CVE | advisory | date | product`.
#[derive(Debug, Clone, Default)]
pub struct RedhatSource {
    document: String,
}
document_source!(RedhatSource);

impl RedhatSource {
    /// Renders advisories as the CVE-table page.
    pub fn render(entries: &[AdvisoryEntry]) -> String {
        let mut html = String::from("<html><body><table class=\"cve-table\">\n");
        html.push_str("<tr><th>CVE</th><th>Advisory</th><th>Date</th></tr>\n");
        for e in entries {
            for cve in &e.cves {
                html.push_str(&format!(
                    "<tr><td>{}</td><td>{}</td><td>{}</td></tr>\n",
                    cve, e.advisory, e.date
                ));
            }
        }
        html.push_str("</table></body></html>\n");
        html
    }
}

impl OsintSource for RedhatSource {
    fn name(&self) -> &'static str {
        "redhat-cve"
    }

    fn fetch(&self, since: Date) -> Result<Vec<Enrichment>, SourceError> {
        let text = extract_text(&self.document);
        let mut out = Vec::new();
        let lines: Vec<&str> = text.lines().collect();
        let mut i = 0;
        while i < lines.len() {
            if let Ok(cve) = lines[i].trim().parse::<CveId>() {
                let advisory = lines
                    .get(i + 1)
                    .ok_or_else(|| SourceError::new("redhat-cve", format!("{cve}: truncated row")))?
                    .trim()
                    .to_string();
                let date: Date = lines
                    .get(i + 2)
                    .and_then(|l| l.trim().parse().ok())
                    .ok_or_else(|| SourceError::new("redhat-cve", format!("{cve}: bad date")))?;
                if date >= since {
                    out.push(Enrichment {
                        cve,
                        source: "redhat-cve",
                        kind: EnrichmentKind::Patch(PatchRecord {
                            product: product_cpe("redhat", "enterprise_linux"),
                            released: date,
                            advisory,
                        }),
                    });
                }
                i += 3;
            } else {
                i += 1;
            }
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Oracle CVE-to-advisory map (Solaris)
// ---------------------------------------------------------------------------

/// Oracle's "Map of CVE to Advisory/Alert" page. Besides patch dates it
/// names Solaris versions affected — platform facts NVD may miss.
#[derive(Debug, Clone, Default)]
pub struct OracleSource {
    document: String,
}
document_source!(OracleSource);

impl OracleSource {
    /// Renders entries as the CVE-to-advisory map.
    pub fn render(entries: &[AdvisoryEntry]) -> String {
        let mut html = String::from("<html><body><table>\n");
        for e in entries {
            for cve in &e.cves {
                html.push_str(&format!(
                    "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
                    cve,
                    e.advisory,
                    e.date,
                    e.versions
                        .iter()
                        .map(|v| format!("Solaris {v}"))
                        .collect::<Vec<_>>()
                        .join("; "),
                ));
            }
        }
        html.push_str("</table></body></html>\n");
        html
    }
}

impl OsintSource for OracleSource {
    fn name(&self) -> &'static str {
        "oracle-cpu"
    }

    fn fetch(&self, since: Date) -> Result<Vec<Enrichment>, SourceError> {
        let text = extract_text(&self.document);
        let mut out = Vec::new();
        let lines: Vec<&str> = text.lines().collect();
        let mut i = 0;
        while i < lines.len() {
            if let Ok(cve) = lines[i].trim().parse::<CveId>() {
                let advisory = lines.get(i + 1).unwrap_or(&"").trim().to_string();
                let date: Date = lines
                    .get(i + 2)
                    .and_then(|l| l.trim().parse().ok())
                    .ok_or_else(|| SourceError::new("oracle-cpu", format!("{cve}: bad date")))?;
                let platforms = lines.get(i + 3).unwrap_or(&"");
                if date >= since {
                    out.push(Enrichment {
                        cve,
                        source: "oracle-cpu",
                        kind: EnrichmentKind::Patch(PatchRecord {
                            product: product_cpe("oracle", "solaris"),
                            released: date,
                            advisory,
                        }),
                    });
                    for p in platforms.split(';') {
                        if let Some(v) = p.trim().strip_prefix("Solaris ") {
                            out.push(Enrichment {
                                cve,
                                source: "oracle-cpu",
                                kind: EnrichmentKind::AdditionalPlatform(AffectedPlatform::exact(
                                    Cpe::os("oracle", "solaris", v),
                                )),
                            });
                        }
                    }
                }
                i += 4;
            } else {
                i += 1;
            }
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// FreeBSD security advisories
// ---------------------------------------------------------------------------

/// FreeBSD security advisories (`FreeBSD-SA-…`), an HTML list of
/// `advisory | date | CVEs`.
#[derive(Debug, Clone, Default)]
pub struct FreeBsdSource {
    document: String,
}
document_source!(FreeBsdSource);

impl FreeBsdSource {
    /// Renders advisories as the SA index.
    pub fn render(entries: &[AdvisoryEntry]) -> String {
        let mut html = String::from("<html><body><ul>\n");
        for e in entries {
            html.push_str(&format!(
                "<li>{} {} {}</li>\n",
                e.advisory,
                e.date,
                e.cves.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(" "),
            ));
        }
        html.push_str("</ul></body></html>\n");
        html
    }
}

impl OsintSource for FreeBsdSource {
    fn name(&self) -> &'static str {
        "freebsd-sa"
    }

    fn fetch(&self, since: Date) -> Result<Vec<Enrichment>, SourceError> {
        let text = extract_text(&self.document);
        let mut out = Vec::new();
        for line in text.lines() {
            let trimmed = line.trim();
            if !trimmed.starts_with("FreeBSD-SA-") {
                continue;
            }
            let mut parts = trimmed.split_whitespace();
            let advisory = parts.next().unwrap_or("").to_string();
            let date: Date = parts
                .next()
                .and_then(|d| d.parse().ok())
                .ok_or_else(|| SourceError::new("freebsd-sa", format!("{advisory}: bad date")))?;
            if date < since {
                continue;
            }
            for cve in scan_cves(trimmed) {
                out.push(Enrichment {
                    cve,
                    source: "freebsd-sa",
                    kind: EnrichmentKind::Patch(PatchRecord {
                        product: product_cpe("freebsd", "freebsd"),
                        released: date,
                        advisory: advisory.clone(),
                    }),
                });
            }
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Microsoft security bulletins
// ---------------------------------------------------------------------------

/// Microsoft security bulletins / update-guide pages: HTML rows of
/// `bulletin | Month DD, YYYY | CVEs | products`.
#[derive(Debug, Clone, Default)]
pub struct MicrosoftSource {
    document: String,
}
document_source!(MicrosoftSource);

impl MicrosoftSource {
    /// Renders entries as a bulletin index.
    pub fn render(entries: &[AdvisoryEntry]) -> String {
        let mut html = String::from("<html><body><table>\n");
        for e in entries {
            let (_, m, d) = e.date.ymd();
            html.push_str(&format!(
                "<tr><td>{}</td><td>{} {}, {}</td><td>{}</td><td>{}</td></tr>\n",
                e.advisory,
                month_name(m),
                d,
                e.date.year(),
                e.cves.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(", "),
                e.versions.iter().map(|v| format!("Windows {v}")).collect::<Vec<_>>().join(", "),
            ));
        }
        html.push_str("</table></body></html>\n");
        html
    }
}

impl OsintSource for MicrosoftSource {
    fn name(&self) -> &'static str {
        "microsoft-bulletin"
    }

    fn fetch(&self, since: Date) -> Result<Vec<Enrichment>, SourceError> {
        let text = extract_text(&self.document);
        let lines: Vec<&str> = text.lines().collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < lines.len() {
            let line = lines[i].trim();
            if line.starts_with("MS")
                && line.len() >= 4
                && line[2..4].chars().all(|c| c.is_ascii_digit())
                || line.starts_with("ADV")
            {
                let advisory = line.to_string();
                let date = lines.get(i + 1).and_then(|l| parse_human_date(l)).ok_or_else(|| {
                    SourceError::new("microsoft-bulletin", format!("{advisory}: bad date"))
                })?;
                let cves = scan_cves(lines.get(i + 2).unwrap_or(&""));
                let products = lines.get(i + 3).unwrap_or(&"");
                if date >= since {
                    for cve in cves {
                        out.push(Enrichment {
                            cve,
                            source: "microsoft-bulletin",
                            kind: EnrichmentKind::Patch(PatchRecord {
                                product: product_cpe("microsoft", "windows"),
                                released: date,
                                advisory: advisory.clone(),
                            }),
                        });
                        for p in products.split(',') {
                            if let Some(v) = p.trim().strip_prefix("Windows ") {
                                out.push(Enrichment {
                                    cve,
                                    source: "microsoft-bulletin",
                                    kind: EnrichmentKind::AdditionalPlatform(
                                        AffectedPlatform::exact(Cpe::os(
                                            "microsoft",
                                            "windows",
                                            &v.to_ascii_lowercase().replace(' ', "_"),
                                        )),
                                    ),
                                });
                            }
                        }
                    }
                }
                i += 4;
            } else {
                i += 1;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(advisory: &str, date: Date, cves: Vec<CveId>, versions: Vec<&str>) -> AdvisoryEntry {
        AdvisoryEntry {
            advisory: advisory.to_string(),
            subject: "kernel".to_string(),
            date,
            cves,
            versions: versions.into_iter().map(String::from).collect(),
        }
    }

    #[test]
    fn human_dates() {
        assert_eq!(parse_human_date("20 May 2018"), Some(Date::from_ymd(2018, 5, 20)));
        assert_eq!(parse_human_date("May 20, 2018"), Some(Date::from_ymd(2018, 5, 20)));
        assert_eq!(parse_human_date("03 Jan 2017"), Some(Date::from_ymd(2017, 1, 3)));
        assert_eq!(parse_human_date("garbage"), None);
        assert_eq!(parse_human_date("99 Foo 2018"), None);
    }

    #[test]
    fn cve_scanning() {
        let found = scan_cves("fixes CVE-2018-8897, CVE-2018-1087 and CVE-2018-8897 again");
        assert_eq!(found, vec![CveId::new(2018, 8897), CveId::new(2018, 1087)]);
        assert!(scan_cves("no ids here, CVE-broken").is_empty());
    }

    #[test]
    fn ubuntu_roundtrip() {
        let entries = vec![entry(
            "USN-3641-1",
            Date::from_ymd(2018, 5, 20),
            vec![CveId::new(2018, 8897)],
            vec!["16.04", "17.04"],
        )];
        let src = UbuntuSource::new(UbuntuSource::render(&entries));
        let out = src.fetch(Date::EPOCH).unwrap();
        assert_eq!(out.len(), 2); // one patch per listed release
        match &out[0].kind {
            EnrichmentKind::Patch(p) => {
                assert_eq!(p.advisory, "USN-3641-1");
                assert_eq!(p.released, Date::from_ymd(2018, 5, 20));
                assert!(p.product.matches(&Cpe::os("canonical", "ubuntu_linux", "16.04")));
            }
            other => panic!("unexpected {other:?}"),
        }
        // since-filter
        assert!(src.fetch(Date::from_ymd(2018, 6, 1)).unwrap().is_empty());
    }

    #[test]
    fn debian_roundtrip() {
        let entries = vec![entry(
            "DSA-4196-1",
            Date::from_ymd(2018, 5, 20),
            vec![CveId::new(2018, 8897), CveId::new(2018, 1087)],
            vec![],
        )];
        let doc = DebianSource::render(&entries);
        assert!(doc.contains("[20 May 2018] DSA-4196-1"));
        let src = DebianSource::new(doc);
        let out = src.fetch(Date::EPOCH).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|e| matches!(e.kind, EnrichmentKind::Patch(_))));
    }

    #[test]
    fn redhat_roundtrip() {
        let entries = vec![entry(
            "RHSA-2018:1318",
            Date::from_ymd(2018, 5, 21),
            vec![CveId::new(2018, 8897)],
            vec![],
        )];
        let src = RedhatSource::new(RedhatSource::render(&entries));
        let out = src.fetch(Date::EPOCH).unwrap();
        assert_eq!(out.len(), 1);
        match &out[0].kind {
            EnrichmentKind::Patch(p) => assert_eq!(p.advisory, "RHSA-2018:1318"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn oracle_reports_additional_platforms() {
        let entries = vec![entry(
            "bulletinjul2016",
            Date::from_ymd(2016, 7, 19),
            vec![CveId::new(2016, 4428)],
            vec!["11.2"],
        )];
        let src = OracleSource::new(OracleSource::render(&entries));
        let out = src.fetch(Date::EPOCH).unwrap();
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0].kind, EnrichmentKind::Patch(_)));
        match &out[1].kind {
            EnrichmentKind::AdditionalPlatform(p) => {
                assert!(p.matches(&Cpe::os("oracle", "solaris", "11.2")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn freebsd_roundtrip() {
        let entries = vec![entry(
            "FreeBSD-SA-18:01.ipsec",
            Date::from_ymd(2018, 3, 7),
            vec![CveId::new(2018, 6916)],
            vec![],
        )];
        let src = FreeBsdSource::new(FreeBsdSource::render(&entries));
        let out = src.fetch(Date::EPOCH).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].cve, CveId::new(2018, 6916));
    }

    #[test]
    fn microsoft_roundtrip_with_platforms() {
        let entries = vec![entry(
            "MS17-010",
            Date::from_ymd(2017, 3, 14),
            vec![CveId::new(2017, 144)],
            vec!["10", "Server 2012"],
        )];
        let src = MicrosoftSource::new(MicrosoftSource::render(&entries));
        let out = src.fetch(Date::EPOCH).unwrap();
        // 1 patch + 2 platform facts
        assert_eq!(out.len(), 3);
        let platforms: Vec<_> = out
            .iter()
            .filter_map(|e| match &e.kind {
                EnrichmentKind::AdditionalPlatform(p) => Some(p.cpe.to_string()),
                _ => None,
            })
            .collect();
        assert!(platforms.iter().any(|p| p.contains("server_2012")));
    }

    #[test]
    fn malformed_documents_error() {
        let src = UbuntuSource::new("<div>USN-1-1: x</div>"); // no date line
        assert!(src.fetch(Date::EPOCH).is_err());
        let src = DebianSource::new("[zz zz zz] DSA-1 x - y\n\t{CVE-2018-0001}");
        assert!(src.fetch(Date::EPOCH).is_err());
        let src = FreeBsdSource::new("<li>FreeBSD-SA-18:01 notadate CVE-2018-0001</li>");
        assert!(src.fetch(Date::EPOCH).is_err());
    }

    #[test]
    fn empty_documents_yield_nothing() {
        assert!(UbuntuSource::default().fetch(Date::EPOCH).unwrap().is_empty());
        assert!(DebianSource::default().fetch(Date::EPOCH).unwrap().is_empty());
        assert!(RedhatSource::default().fetch(Date::EPOCH).unwrap().is_empty());
        assert!(OracleSource::default().fetch(Date::EPOCH).unwrap().is_empty());
        assert!(FreeBsdSource::default().fetch(Date::EPOCH).unwrap().is_empty());
        assert!(MicrosoftSource::default().fetch(Date::EPOCH).unwrap().is_empty());
    }
}
