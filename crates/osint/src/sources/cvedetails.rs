//! CVE-Details: a secondary aggregator used to corroborate exploit sightings.
//!
//! `cvedetails.com` cross-references CVEs with known exploit counts. Lazarus
//! uses it as a second witness for the `v.exploited` flag: ExploitDB rows can
//! lag, and an exploit count on CVE-Details marks the vulnerability as
//! exploited even before a public PoC lands in the archive.

use crate::date::Date;
use crate::model::{CveId, ExploitRecord};

use super::html::extract_text;
use super::{Enrichment, EnrichmentKind, OsintSource, SourceError};

const NAME: &str = "cve-details";

/// The CVE-Details source, holding a vulnerability-list page.
#[derive(Debug, Clone, Default)]
pub struct CveDetailsSource {
    document: String,
}

impl CveDetailsSource {
    /// Creates the source over a raw page.
    pub fn new(document: impl Into<String>) -> Self {
        CveDetailsSource { document: document.into() }
    }

    /// Replaces the document (a crawler refresh).
    pub fn set_document(&mut self, document: impl Into<String>) {
        self.document = document.into();
    }

    /// Renders `(cve, exploit_count, first_seen)` rows as a listing page.
    pub fn render(rows: &[(CveId, u32, Date)]) -> String {
        let mut html = String::from("<html><body><table class=\"searchresults\">\n");
        html.push_str("<tr><th>CVE ID</th><th># of Exploits</th><th>Exploit Date</th></tr>\n");
        for (cve, count, date) in rows {
            html.push_str(&format!(
                "<tr><td><a href=\"/cve/{cve}/\">{cve}</a></td><td>{count}</td><td>{date}</td></tr>\n"
            ));
        }
        html.push_str("</table></body></html>\n");
        html
    }
}

impl OsintSource for CveDetailsSource {
    fn name(&self) -> &'static str {
        NAME
    }

    fn fetch(&self, since: Date) -> Result<Vec<Enrichment>, SourceError> {
        let text = extract_text(&self.document);
        let lines: Vec<&str> = text.lines().collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < lines.len() {
            if let Ok(cve) = lines[i].trim().parse::<CveId>() {
                let count: u32 = lines
                    .get(i + 1)
                    .and_then(|l| l.trim().parse().ok())
                    .ok_or_else(|| SourceError::new(NAME, format!("{cve}: bad exploit count")))?;
                let date: Date = lines
                    .get(i + 2)
                    .and_then(|l| l.trim().parse().ok())
                    .ok_or_else(|| SourceError::new(NAME, format!("{cve}: bad exploit date")))?;
                if count > 0 && date >= since {
                    out.push(Enrichment {
                        cve,
                        source: NAME,
                        kind: EnrichmentKind::Exploit(ExploitRecord {
                            published: date,
                            source: NAME.to_string(),
                            verified: false,
                        }),
                    });
                }
                i += 3;
            } else {
                i += 1;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let rows = vec![
            (CveId::new(2018, 8897), 2, Date::from_ymd(2018, 5, 21)),
            (CveId::new(2018, 1111), 0, Date::from_ymd(2018, 5, 30)),
        ];
        let src = CveDetailsSource::new(CveDetailsSource::render(&rows));
        let out = src.fetch(Date::EPOCH).unwrap();
        // zero-exploit rows are not sightings
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].cve, CveId::new(2018, 8897));
        match &out[0].kind {
            EnrichmentKind::Exploit(e) => {
                assert_eq!(e.published, Date::from_ymd(2018, 5, 21));
                assert!(!e.verified);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn since_filter() {
        let rows = vec![(CveId::new(2017, 144), 5, Date::from_ymd(2017, 5, 17))];
        let src = CveDetailsSource::new(CveDetailsSource::render(&rows));
        assert!(src.fetch(Date::from_ymd(2018, 1, 1)).unwrap().is_empty());
    }

    #[test]
    fn corrupt_row_is_error() {
        let src = CveDetailsSource::new("<tr><td>CVE-2018-0001</td><td>not-a-number</td></tr>");
        assert!(src.fetch(Date::EPOCH).is_err());
    }

    #[test]
    fn empty_is_ok() {
        assert!(CveDetailsSource::default().fetch(Date::EPOCH).unwrap().is_empty());
    }
}
