//! A minimal HTML text extractor for the vendor-site parsers.
//!
//! Vendor advisory pages are HTML; their parsers (paper §5.1: "we had to
//! develop specialized HTML parsers for them") first strip markup to a text
//! stream, then scan for advisory identifiers, CVE ids and dates. This is
//! deliberately a *text extractor*, not a DOM: advisory pages are scraped by
//! pattern, and a tolerant extractor survives the tag soup real vendor pages
//! contain.

/// Strips tags, comments and script/style bodies from an HTML fragment,
/// decoding the handful of entities that occur in advisory pages. Block-level
/// closing tags produce newlines so line-oriented scanning keeps working.
///
/// # Examples
///
/// ```
/// use lazarus_osint::sources::extract_text;
///
/// let html = "<html><body><h1>USN-3641-1</h1><p>Fixed &amp; released</p></body></html>";
/// assert_eq!(extract_text(html), "USN-3641-1\nFixed & released\n");
/// ```
pub fn extract_text(html: &str) -> String {
    let mut out = String::with_capacity(html.len() / 2);
    let bytes = html.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'<' {
            // Comment?
            if html[i..].starts_with("<!--") {
                i = html[i..].find("-->").map(|p| i + p + 3).unwrap_or(bytes.len());
                continue;
            }
            let close = match html[i..].find('>') {
                Some(p) => i + p,
                None => break,
            };
            let tag_body = &html[i + 1..close];
            let tag_name: String = tag_body
                .trim_start_matches('/')
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric())
                .collect::<String>()
                .to_ascii_lowercase();
            // Skip script/style contents entirely.
            if !tag_body.starts_with('/') && (tag_name == "script" || tag_name == "style") {
                let end_tag = format!("</{tag_name}");
                i = html[close..]
                    .to_ascii_lowercase()
                    .find(&end_tag)
                    .map(|p| close + p)
                    .unwrap_or(bytes.len());
                continue;
            }
            if (tag_body.starts_with('/') && is_block_tag(&tag_name)) || tag_name == "br" {
                out.push('\n');
            }
            i = close + 1;
        } else if bytes[i] == b'&' {
            let (decoded, advance) = decode_entity(&html[i..]);
            out.push_str(decoded);
            i += advance;
        } else {
            let ch = html[i..].chars().next().unwrap_or('\u{FFFD}');
            out.push(ch);
            i += ch.len_utf8();
        }
    }
    // Collapse runs of spaces within lines; keep line structure.
    let mut cleaned = String::with_capacity(out.len());
    for line in out.lines() {
        let trimmed: Vec<&str> = line.split_whitespace().collect();
        if !trimmed.is_empty() {
            cleaned.push_str(&trimmed.join(" "));
            cleaned.push('\n');
        }
    }
    cleaned
}

fn is_block_tag(name: &str) -> bool {
    matches!(
        name,
        "p" | "div"
            | "li"
            | "tr"
            | "td"
            | "th"
            | "h1"
            | "h2"
            | "h3"
            | "h4"
            | "h5"
            | "h6"
            | "table"
            | "ul"
            | "ol"
            | "dt"
            | "dd"
            | "pre"
            | "blockquote"
            | "section"
            | "article"
            | "header"
            | "footer"
    )
}

fn decode_entity(s: &str) -> (&'static str, usize) {
    const ENTITIES: [(&str, &str); 6] = [
        ("&amp;", "&"),
        ("&lt;", "<"),
        ("&gt;", ">"),
        ("&quot;", "\""),
        ("&#39;", "'"),
        ("&nbsp;", " "),
    ];
    for (ent, rep) in ENTITIES {
        if s.starts_with(ent) {
            return (rep, ent.len());
        }
    }
    ("&", 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_tags_and_keeps_text() {
        let html = "<div class=\"usn\"><a href=\"/x\">USN-3641-1</a>: Linux kernel</div>";
        assert_eq!(extract_text(html), "USN-3641-1: Linux kernel\n");
    }

    #[test]
    fn block_tags_break_lines() {
        let html = "<tr><td>CVE-2018-8897</td><td>2018-05-08</td></tr>";
        assert_eq!(extract_text(html), "CVE-2018-8897\n2018-05-08\n");
    }

    #[test]
    fn entities_are_decoded() {
        assert_eq!(
            extract_text("a &amp; b &lt;c&gt; &quot;d&quot; &#39;e&#39;"),
            "a & b <c> \"d\" 'e'\n"
        );
        assert_eq!(extract_text("x&nbsp;y"), "x y\n");
        // Unknown entity: keep the ampersand literally.
        assert_eq!(extract_text("R&D"), "R&D\n");
    }

    #[test]
    fn script_and_style_bodies_are_dropped() {
        let html =
            "<p>keep</p><script>var CVE = 'CVE-0000-0000';</script><style>p{}</style><p>also</p>";
        assert_eq!(extract_text(html), "keep\nalso\n");
    }

    #[test]
    fn comments_are_dropped() {
        assert_eq!(extract_text("a<!-- CVE-9999-1 -->b"), "ab\n");
    }

    #[test]
    fn tolerates_truncated_markup() {
        assert_eq!(extract_text("text <unclosed"), "text\n");
        assert_eq!(extract_text("<!-- never closed"), "");
        assert_eq!(extract_text("<script>never closed"), "");
    }

    #[test]
    fn whitespace_is_collapsed() {
        assert_eq!(extract_text("a   b\n\n\n   c  "), "a b\nc\n");
    }
}
