//! The non-NVD OSINT sources and their specialized parsers.
//!
//! Besides NVD, the Lazarus prototype monitors eight additional sources —
//! ExploitDB, CVE-Details, Ubuntu, Debian, RedHat, Solaris (Oracle), FreeBSD
//! and Microsoft (paper §5.1). These sources are "not as well structured as
//! NVD", so each gets a specialized parser for its native document format:
//! ExploitDB's CSV index, Debian's DSA list, Ubuntu's USN pages, Oracle's
//! CVE-to-advisory map, and so on.
//!
//! Every source implements [`OsintSource`], producing [`Enrichment`] records
//! (exploit sightings, patch releases, extra affected platforms) that the
//! data manager merges into the knowledge base. In this reproduction the raw
//! documents come from the synthetic world generator instead of HTTP, but
//! they pass through the same parsers a live crawler would use.

mod cvedetails;
pub mod exploitdb;
mod html;
pub mod vendors;

pub use cvedetails::CveDetailsSource;
pub use exploitdb::{ExploitDbRow, ExploitDbSource};
pub use html::extract_text;
pub use vendors::{
    AdvisoryEntry, DebianSource, FreeBsdSource, MicrosoftSource, OracleSource, RedhatSource,
    UbuntuSource,
};

use std::fmt;

use crate::date::Date;
use crate::model::{AffectedPlatform, CveId, ExploitRecord, PatchRecord, Vulnerability};

/// One fact learned from a secondary OSINT source about a CVE.
#[derive(Debug, Clone, PartialEq)]
pub struct Enrichment {
    /// The CVE the fact is about.
    pub cve: CveId,
    /// The fact itself.
    pub kind: EnrichmentKind,
    /// Which source reported it.
    pub source: &'static str,
}

/// The kinds of intelligence secondary sources contribute.
#[derive(Debug, Clone, PartialEq)]
pub enum EnrichmentKind {
    /// A public exploit was observed.
    Exploit(ExploitRecord),
    /// A vendor released a patch.
    Patch(PatchRecord),
    /// The source lists an affected platform NVD missed (paper §4.2:
    /// "often vendor sites also give additional product versions
    /// compromised by the vulnerability").
    AdditionalPlatform(AffectedPlatform),
}

impl Enrichment {
    /// Merges this fact into `vuln` (which must be the matching CVE),
    /// skipping exact duplicates.
    ///
    /// # Panics
    ///
    /// Panics if `vuln.id` differs from `self.cve`.
    pub fn apply(&self, vuln: &mut Vulnerability) {
        assert_eq!(vuln.id, self.cve, "enrichment applied to wrong CVE");
        match &self.kind {
            EnrichmentKind::Exploit(e) => {
                if !vuln.exploits.contains(e) {
                    vuln.exploits.push(e.clone());
                }
            }
            EnrichmentKind::Patch(p) => {
                if !vuln.patches.contains(p) {
                    vuln.patches.push(p.clone());
                }
            }
            EnrichmentKind::AdditionalPlatform(p) => {
                if !vuln.affected.contains(p) {
                    vuln.affected.push(p.clone());
                }
            }
        }
    }
}

/// Error raised by a source whose document could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceError {
    /// Source name.
    pub source: &'static str,
    /// Human-readable description of the malformation.
    pub detail: String,
}

impl SourceError {
    pub(crate) fn new(source: &'static str, detail: impl Into<String>) -> Self {
        SourceError { source, detail: detail.into() }
    }
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failed to parse {} document: {}", self.source, self.detail)
    }
}

impl std::error::Error for SourceError {}

/// A crawlable OSINT source.
///
/// `fetch` parses the source's current documents and returns every fact
/// published on or after `since` — the data manager polls with the date of
/// its previous round.
pub trait OsintSource: Send {
    /// Stable source name (`"exploit-db"`, `"ubuntu-usn"`, …).
    fn name(&self) -> &'static str;

    /// Parses the documents and returns new enrichments.
    ///
    /// # Errors
    ///
    /// Returns [`SourceError`] when a document is malformed.
    fn fetch(&self, since: Date) -> Result<Vec<Enrichment>, SourceError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpe::Cpe;
    use crate::cvss::CvssV3;

    fn vuln() -> Vulnerability {
        Vulnerability::new(
            CveId::new(2018, 8897),
            Date::from_ymd(2018, 5, 8),
            CvssV3::CRITICAL_RCE,
            "pop ss",
        )
    }

    #[test]
    fn apply_exploit_and_dedup() {
        let mut v = vuln();
        let e = Enrichment {
            cve: v.id,
            source: "exploit-db",
            kind: EnrichmentKind::Exploit(ExploitRecord {
                published: Date::from_ymd(2018, 5, 15),
                source: "exploit-db".into(),
                verified: true,
            }),
        };
        e.apply(&mut v);
        e.apply(&mut v);
        assert_eq!(v.exploits.len(), 1);
    }

    #[test]
    fn apply_patch_and_platform() {
        let mut v = vuln();
        Enrichment {
            cve: v.id,
            source: "ubuntu-usn",
            kind: EnrichmentKind::Patch(PatchRecord {
                product: Cpe::os("canonical", "ubuntu_linux", "16.04"),
                released: Date::from_ymd(2018, 5, 20),
                advisory: "USN-3641-1".into(),
            }),
        }
        .apply(&mut v);
        Enrichment {
            cve: v.id,
            source: "oracle",
            kind: EnrichmentKind::AdditionalPlatform(AffectedPlatform::exact(Cpe::os(
                "oracle", "solaris", "11",
            ))),
        }
        .apply(&mut v);
        assert_eq!(v.patches.len(), 1);
        assert!(v.affects(&Cpe::os("oracle", "solaris", "11")));
    }

    #[test]
    #[should_panic(expected = "wrong CVE")]
    fn apply_to_wrong_cve_panics() {
        let mut v = vuln();
        Enrichment {
            cve: CveId::new(2017, 1),
            source: "x",
            kind: EnrichmentKind::Exploit(ExploitRecord {
                published: Date::EPOCH,
                source: "x".into(),
                verified: false,
            }),
        }
        .apply(&mut v);
    }
}
