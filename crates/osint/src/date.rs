//! Calendar dates with day resolution.
//!
//! All Lazarus timing (vulnerability publication, patch and exploit
//! availability, monitoring rounds) happens at day granularity, matching the
//! paper's daily `Monitor()` rounds. [`Date`] is a thin wrapper over "days
//! since 1970-01-01" with civil-calendar conversions, so arithmetic is plain
//! integer math and the type is `Copy`, totally ordered, and hashable.
//!
//! # Examples
//!
//! ```
//! use lazarus_osint::date::Date;
//!
//! let published = Date::from_ymd(2018, 5, 8);
//! let patched = published + 12;
//! assert_eq!(patched.to_string(), "2018-05-20");
//! assert_eq!(patched - published, 12);
//! ```

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::str::FromStr;

/// A calendar date, stored as days since the Unix epoch (1970-01-01).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date(i32);

impl Date {
    /// The Unix epoch, 1970-01-01.
    pub const EPOCH: Date = Date(0);

    /// Creates a date from a count of days since 1970-01-01.
    pub const fn from_days(days: i32) -> Self {
        Date(days)
    }

    /// Days since 1970-01-01 (negative for earlier dates).
    pub const fn days(self) -> i32 {
        self.0
    }

    /// Creates a date from a civil year/month/day triple.
    ///
    /// # Panics
    ///
    /// Panics if `month` is not in `1..=12` or `day` is not a valid day of
    /// that month.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Self {
        assert!((1..=12).contains(&month), "month {month} out of range");
        assert!(
            day >= 1 && day <= days_in_month(year, month),
            "day {day} out of range for {year}-{month:02}"
        );
        Date(days_from_civil(year, month, day))
    }

    /// Fallible variant of [`from_ymd`](Self::from_ymd): `None` when the
    /// triple is not a valid calendar date.
    pub fn try_from_ymd(year: i32, month: u32, day: u32) -> Option<Self> {
        if (1..=12).contains(&month) && day >= 1 && day <= days_in_month(year, month) {
            Some(Date(days_from_civil(year, month, day)))
        } else {
            None
        }
    }

    /// Decomposes the date into `(year, month, day)`.
    pub fn ymd(self) -> (i32, u32, u32) {
        civil_from_days(self.0)
    }

    /// The calendar year.
    pub fn year(self) -> i32 {
        self.ymd().0
    }

    /// The calendar month, `1..=12`.
    pub fn month(self) -> u32 {
        self.ymd().1
    }

    /// The day of the month, `1..=31`.
    pub fn day(self) -> u32 {
        self.ymd().2
    }

    /// First day of this date's month.
    pub fn first_of_month(self) -> Date {
        let (y, m, _) = self.ymd();
        Date::from_ymd(y, m, 1)
    }

    /// First day of the month following this date's month.
    pub fn first_of_next_month(self) -> Date {
        let (y, m, _) = self.ymd();
        if m == 12 {
            Date::from_ymd(y + 1, 1, 1)
        } else {
            Date::from_ymd(y, m + 1, 1)
        }
    }

    /// Saturating day difference `self - earlier`, clamped at zero.
    ///
    /// Useful for "age" computations where a publication date in the future
    /// (clock skew between sources) must not produce a negative age.
    pub fn age_since(self, earlier: Date) -> u32 {
        (self.0 - earlier.0).max(0) as u32
    }
}

impl Add<i32> for Date {
    type Output = Date;
    fn add(self, days: i32) -> Date {
        Date(self.0 + days)
    }
}

impl AddAssign<i32> for Date {
    fn add_assign(&mut self, days: i32) {
        self.0 += days;
    }
}

impl Sub<Date> for Date {
    type Output = i32;
    fn sub(self, other: Date) -> i32 {
        self.0 - other.0
    }
}

impl Sub<i32> for Date {
    type Output = Date;
    fn sub(self, days: i32) -> Date {
        Date(self.0 - days)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

impl fmt::Debug for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Date({self})")
    }
}

/// Error returned when parsing a [`Date`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDateError {
    input: String,
}

impl fmt::Display for ParseDateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid date syntax: {:?} (expected YYYY-MM-DD)", self.input)
    }
}

impl std::error::Error for ParseDateError {}

impl FromStr for Date {
    type Err = ParseDateError;

    /// Parses `YYYY-MM-DD`; a trailing `T...` timestamp suffix (as found in
    /// NVD feeds, e.g. `2018-05-08T13:29Z`) is ignored.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseDateError { input: s.to_string() };
        let date_part = s.split('T').next().unwrap_or("");
        let mut parts = date_part.splitn(3, '-');
        let y: i32 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let m: u32 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let d: u32 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        if !(1..=12).contains(&m) || d < 1 || d > days_in_month(y, m) {
            return Err(err());
        }
        Ok(Date::from_ymd(y, m, d))
    }
}

fn is_leap(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap(year) => 29,
        2 => 28,
        _ => 0,
    }
}

/// Days since 1970-01-01 from a civil date (Howard Hinnant's algorithm).
fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u32; // [0, 399]
    let mp = (m + 9) % 12; // March = 0
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe as i32 - 719468
}

/// Civil date from days since 1970-01-01 (inverse of `days_from_civil`).
fn civil_from_days(z: i32) -> (i32, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = (z - era * 146097) as u32; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe as i32 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970() {
        assert_eq!(Date::EPOCH.ymd(), (1970, 1, 1));
        assert_eq!(Date::from_ymd(1970, 1, 1).days(), 0);
    }

    #[test]
    fn known_dates_roundtrip() {
        for &(y, m, d) in &[
            (2014, 1, 1),
            (2016, 2, 29),
            (2017, 12, 31),
            (2018, 5, 8),
            (2018, 8, 31),
            (2000, 2, 29),
            (1999, 12, 31),
        ] {
            let date = Date::from_ymd(y, m, d);
            assert_eq!(date.ymd(), (y, m, d), "roundtrip for {y}-{m}-{d}");
        }
    }

    #[test]
    fn arithmetic() {
        let d = Date::from_ymd(2018, 1, 31);
        assert_eq!((d + 1).ymd(), (2018, 2, 1));
        assert_eq!((d - 31).ymd(), (2017, 12, 31));
        assert_eq!(Date::from_ymd(2018, 3, 1) - Date::from_ymd(2018, 2, 1), 28);
        assert_eq!(Date::from_ymd(2016, 3, 1) - Date::from_ymd(2016, 2, 1), 29);
    }

    #[test]
    fn ordering_follows_calendar() {
        assert!(Date::from_ymd(2018, 5, 1) < Date::from_ymd(2018, 5, 2));
        assert!(Date::from_ymd(2017, 12, 31) < Date::from_ymd(2018, 1, 1));
    }

    #[test]
    fn display_format() {
        assert_eq!(Date::from_ymd(2018, 5, 8).to_string(), "2018-05-08");
        assert_eq!(Date::from_ymd(2014, 11, 23).to_string(), "2014-11-23");
    }

    #[test]
    fn parse_plain_and_nvd_timestamp() {
        assert_eq!("2018-05-08".parse::<Date>().unwrap(), Date::from_ymd(2018, 5, 8));
        assert_eq!("2016-09-08T13:29Z".parse::<Date>().unwrap(), Date::from_ymd(2016, 9, 8));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "2018", "2018-13-01", "2018-02-30", "20-1a-02", "x-y-z"] {
            assert!(bad.parse::<Date>().is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn age_since_saturates() {
        let a = Date::from_ymd(2018, 1, 1);
        let b = Date::from_ymd(2018, 2, 1);
        assert_eq!(b.age_since(a), 31);
        assert_eq!(a.age_since(b), 0);
    }

    #[test]
    fn month_helpers() {
        let d = Date::from_ymd(2018, 12, 15);
        assert_eq!(d.first_of_month(), Date::from_ymd(2018, 12, 1));
        assert_eq!(d.first_of_next_month(), Date::from_ymd(2019, 1, 1));
        let d = Date::from_ymd(2018, 1, 31);
        assert_eq!(d.first_of_next_month(), Date::from_ymd(2018, 2, 1));
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap(2016));
        assert!(is_leap(2000));
        assert!(!is_leap(1900));
        assert!(!is_leap(2018));
    }
}
