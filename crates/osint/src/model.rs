//! The vulnerability data model: CVE identifiers, affected platforms,
//! patch and exploit records.
//!
//! This mirrors what the Lazarus data manager stores in its knowledge base
//! (paper §5.1): for each vulnerability, "its CVE identifier, the published
//! date, the products it affects, its text description, the CVSS attributes,
//! exploit and patching dates".

use std::fmt;
use std::str::FromStr;

use crate::cpe::{Cpe, VersionRange};
use crate::cvss::CvssV3;
use crate::date::Date;

/// A CVE identifier, e.g. `CVE-2018-8897`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CveId {
    /// Year component of the identifier.
    pub year: u16,
    /// Sequence number within the year.
    pub number: u32,
}

impl CveId {
    /// Creates a CVE id from its year and sequence number.
    pub const fn new(year: u16, number: u32) -> CveId {
        CveId { year, number }
    }
}

impl fmt::Display for CveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CVE-{}-{:04}", self.year, self.number)
    }
}

impl fmt::Debug for CveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Error returned when a CVE identifier cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCveIdError {
    input: String,
}

impl fmt::Display for ParseCveIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid CVE identifier: {:?}", self.input)
    }
}

impl std::error::Error for ParseCveIdError {}

impl FromStr for CveId {
    type Err = ParseCveIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseCveIdError { input: s.to_string() };
        let rest = s.strip_prefix("CVE-").ok_or_else(err)?;
        let (year, number) = rest.split_once('-').ok_or_else(err)?;
        Ok(CveId {
            year: year.parse().map_err(|_| err())?,
            number: number.parse().map_err(|_| err())?,
        })
    }
}

/// One platform entry from a vulnerability's CPE applicability list.
#[derive(Debug, Clone, PartialEq)]
pub struct AffectedPlatform {
    /// The (possibly wildcarded) CPE name listed by the report.
    pub cpe: Cpe,
    /// Optional version-range constraint refining the CPE version field.
    pub range: VersionRange,
}

impl AffectedPlatform {
    /// An entry affecting exactly one concrete platform.
    pub fn exact(cpe: Cpe) -> AffectedPlatform {
        AffectedPlatform { cpe, range: VersionRange::any() }
    }

    /// True when this entry covers the concrete platform `target`.
    pub fn matches(&self, target: &Cpe) -> bool {
        if !self.cpe.matches(target) {
            return false;
        }
        match target.version.as_literal() {
            Some(v) => self.range.contains(v),
            // A wildcard target can only be covered by an unconstrained range.
            None => self.range == VersionRange::any(),
        }
    }
}

/// A vendor patch (security update) for one product.
#[derive(Debug, Clone, PartialEq)]
pub struct PatchRecord {
    /// The product the patch applies to.
    pub product: Cpe,
    /// Day the fix became available.
    pub released: Date,
    /// Advisory identifier at the vendor (e.g. `USN-3654-1`, `DSA-4196`).
    pub advisory: String,
}

/// A public exploit observed for the vulnerability.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploitRecord {
    /// Day the exploit was first distributed.
    pub published: Date,
    /// Where it was observed (e.g. `exploit-db`).
    pub source: String,
    /// Whether the exploit is verified/weaponised (vs. proof of concept).
    pub verified: bool,
}

/// A fully-enriched vulnerability record, aggregating NVD data with the
/// patch/exploit intelligence collected from the other OSINT sources.
#[derive(Debug, Clone, PartialEq)]
pub struct Vulnerability {
    /// CVE identifier.
    pub id: CveId,
    /// Free-text description from the CVE entry (input to clustering).
    pub description: String,
    /// Publication day at NVD.
    pub published: Date,
    /// CVSS v3 base metrics.
    pub cvss: CvssV3,
    /// Platforms listed as affected.
    pub affected: Vec<AffectedPlatform>,
    /// Known patches, per product.
    pub patches: Vec<PatchRecord>,
    /// Known public exploits.
    pub exploits: Vec<ExploitRecord>,
}

impl Vulnerability {
    /// Creates a minimal record; patches and exploits can be added as the
    /// enrichment pipeline discovers them.
    pub fn new(id: CveId, published: Date, cvss: CvssV3, description: impl Into<String>) -> Self {
        Vulnerability {
            id,
            description: description.into(),
            published,
            cvss,
            affected: Vec::new(),
            patches: Vec::new(),
            exploits: Vec::new(),
        }
    }

    /// Builder-style helper adding an affected platform.
    pub fn affecting(mut self, platform: AffectedPlatform) -> Self {
        self.affected.push(platform);
        self
    }

    /// True when any listed platform covers `target`.
    pub fn affects(&self, target: &Cpe) -> bool {
        self.affected.iter().any(|p| p.matches(target))
    }

    /// Earliest patch date applying to `target`, if any patch is out.
    pub fn patch_date_for(&self, target: &Cpe) -> Option<Date> {
        self.patches
            .iter()
            .filter(|p| p.product.matches(target) || p.product.same_product(target))
            .map(|p| p.released)
            .min()
    }

    /// True if a patch for `target` is available on day `on`.
    pub fn is_patched_for(&self, target: &Cpe, on: Date) -> bool {
        self.patch_date_for(target).is_some_and(|d| d <= on)
    }

    /// True if *some* patch exists by `on` — the flag `v.patched` of Eq. 3,
    /// which the paper evaluates per vulnerability (not per platform).
    pub fn is_patched(&self, on: Date) -> bool {
        self.patches.iter().any(|p| p.released <= on)
    }

    /// Earliest public exploit date, if any.
    pub fn first_exploit_date(&self) -> Option<Date> {
        self.exploits.iter().map(|e| e.published).min()
    }

    /// True if an exploit is circulating on day `on` — the flag
    /// `v.exploited` of Eq. 4.
    pub fn is_exploited(&self, on: Date) -> bool {
        self.first_exploit_date().is_some_and(|d| d <= on)
    }

    /// Age in days at `on` (zero before publication).
    pub fn age_at(&self, on: Date) -> u32 {
        on.age_since(self.published)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cvss::CvssV3;

    fn vuln() -> Vulnerability {
        Vulnerability::new(
            CveId::new(2018, 8897),
            Date::from_ymd(2018, 5, 8),
            CvssV3::CRITICAL_RCE,
            "mishandled exception on pop ss instruction",
        )
        .affecting(AffectedPlatform::exact(Cpe::os("canonical", "ubuntu_linux", "16.04")))
        .affecting(AffectedPlatform::exact(Cpe::os("debian", "debian_linux", "8.0")))
    }

    #[test]
    fn cve_id_display_and_parse() {
        let id = CveId::new(2018, 8897);
        assert_eq!(id.to_string(), "CVE-2018-8897");
        assert_eq!("CVE-2018-8897".parse::<CveId>().unwrap(), id);
        assert_eq!("CVE-2014-0157".parse::<CveId>().unwrap().to_string(), "CVE-2014-0157");
        assert!("CVE-2018".parse::<CveId>().is_err());
        assert!("cve-2018-1".parse::<CveId>().is_err());
        assert!("CVE-20x8-1".parse::<CveId>().is_err());
    }

    #[test]
    fn cve_ids_order_by_year_then_number() {
        let mut ids = vec![CveId::new(2018, 2), CveId::new(2014, 9999), CveId::new(2018, 1)];
        ids.sort();
        assert_eq!(ids, vec![CveId::new(2014, 9999), CveId::new(2018, 1), CveId::new(2018, 2)]);
    }

    #[test]
    fn affects_matches_listed_platforms() {
        let v = vuln();
        assert!(v.affects(&Cpe::os("canonical", "ubuntu_linux", "16.04")));
        assert!(v.affects(&Cpe::os("debian", "debian_linux", "8.0")));
        assert!(!v.affects(&Cpe::os("freebsd", "freebsd", "11")));
    }

    #[test]
    fn version_range_refines_cpe_match() {
        let mut listed = Cpe::os("openstack", "horizon", "x");
        listed.version = crate::cpe::CpeValue::Any;
        let entry = AffectedPlatform { cpe: listed, range: VersionRange::before("2013.2.4") };
        assert!(entry.matches(&Cpe::os("openstack", "horizon", "2013.2")));
        assert!(!entry.matches(&Cpe::os("openstack", "horizon", "2013.2.4")));
    }

    #[test]
    fn patch_lifecycle() {
        let mut v = vuln();
        let ubuntu = Cpe::os("canonical", "ubuntu_linux", "16.04");
        assert!(!v.is_patched(Date::from_ymd(2018, 6, 1)));
        assert_eq!(v.patch_date_for(&ubuntu), None);
        v.patches.push(PatchRecord {
            product: ubuntu.clone(),
            released: Date::from_ymd(2018, 5, 20),
            advisory: "USN-3641-1".into(),
        });
        assert!(v.is_patched_for(&ubuntu, Date::from_ymd(2018, 5, 20)));
        assert!(!v.is_patched_for(&ubuntu, Date::from_ymd(2018, 5, 19)));
        // Debian remains unpatched even though the vulnerability "is patched".
        assert!(v.is_patched(Date::from_ymd(2018, 5, 20)));
        assert!(!v
            .is_patched_for(&Cpe::os("debian", "debian_linux", "8.0"), Date::from_ymd(2018, 6, 1)));
    }

    #[test]
    fn patch_applies_across_versions_of_same_product() {
        let mut v = vuln();
        v.patches.push(PatchRecord {
            product: Cpe::os("canonical", "ubuntu_linux", "17.04"),
            released: Date::from_ymd(2018, 5, 20),
            advisory: "USN-3641-2".into(),
        });
        // same_product fallback: an Ubuntu advisory covers the Ubuntu line.
        assert!(v.is_patched_for(
            &Cpe::os("canonical", "ubuntu_linux", "16.04"),
            Date::from_ymd(2018, 5, 21)
        ));
    }

    #[test]
    fn exploit_lifecycle() {
        let mut v = vuln();
        assert!(!v.is_exploited(Date::from_ymd(2018, 12, 31)));
        v.exploits.push(ExploitRecord {
            published: Date::from_ymd(2018, 5, 30),
            source: "exploit-db".into(),
            verified: true,
        });
        v.exploits.push(ExploitRecord {
            published: Date::from_ymd(2018, 6, 15),
            source: "metasploit".into(),
            verified: true,
        });
        assert_eq!(v.first_exploit_date(), Some(Date::from_ymd(2018, 5, 30)));
        assert!(v.is_exploited(Date::from_ymd(2018, 5, 30)));
        assert!(!v.is_exploited(Date::from_ymd(2018, 5, 29)));
    }

    #[test]
    fn age_computation() {
        let v = vuln();
        assert_eq!(v.age_at(Date::from_ymd(2018, 5, 8)), 0);
        assert_eq!(v.age_at(Date::from_ymd(2019, 5, 8)), 365);
        assert_eq!(v.age_at(Date::from_ymd(2018, 1, 1)), 0); // before publication
    }
}
