//! The Data manager: the threaded collection pipeline of the control plane.
//!
//! Paper §5.1 (module 1): "The processing is carried out with several
//! threads cooperatively assembling as much data as possible about each
//! vulnerability — a queue is populated with requests pertaining a particular
//! vulnerability, and other threads will look for related data in additional
//! OSINT sources."
//!
//! [`DataManager`] owns the shared [`KnowledgeBase`] behind a
//! `parking_lot::RwLock`. Feed documents are parsed on the calling thread;
//! the secondary sources are crawled concurrently on scoped worker threads
//! that stream [`Enrichment`]s over a crossbeam channel back to an applier.

use std::sync::Arc;

use crossbeam::channel;
use lazarus_obs::{FieldValue, Obs};
use parking_lot::RwLock;

use crate::date::Date;
use crate::feed::{FeedError, NvdFeed};
use crate::kb::KnowledgeBase;
use crate::sources::{OsintSource, SourceError};

/// Statistics from one synchronization round.
///
/// Degraded rounds ([`DataManager::sync_sources_degraded`]) additionally
/// report per-source retries and final failures; how hard a round tries
/// before declaring a source down is governed by [`RetryPolicy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// Vulnerabilities parsed from the feeds.
    pub parsed: usize,
    /// Vulnerabilities retained (relevant to monitored products).
    pub retained: usize,
    /// Enrichments applied to known CVEs.
    pub enrichments_applied: usize,
    /// Enrichments buffered for unknown CVEs.
    pub enrichments_buffered: usize,
    /// Fetch retries performed across all sources (degraded rounds only).
    pub source_retries: usize,
    /// Sources that stayed down after every retry (degraded rounds only).
    pub sources_failed: usize,
}

/// How persistently a degraded sync round retries a failing source before
/// moving on without it.
///
/// Backoff between attempt `k` and `k + 1` is capped exponential:
/// `min(base_backoff_ms << k, max_backoff_ms)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total fetch attempts per source (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, in milliseconds.
    pub base_backoff_ms: u64,
    /// Ceiling the exponential backoff saturates at, in milliseconds.
    pub max_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { max_attempts: 3, base_backoff_ms: 50, max_backoff_ms: 400 }
    }
}

impl RetryPolicy {
    /// One attempt, no waiting — for tests and for sources known to fail
    /// deterministically (a malformed document does not heal by retrying,
    /// but a flaky transport does).
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_attempts: 1, base_backoff_ms: 0, max_backoff_ms: 0 }
    }

    /// The backoff to wait after failed attempt `attempt` (0-based).
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        self.base_backoff_ms
            .checked_shl(attempt.min(16))
            .unwrap_or(u64::MAX)
            .min(self.max_backoff_ms)
    }
}

/// The shared, thread-safe knowledge base handle with feed/source sync.
#[derive(Debug, Clone)]
pub struct DataManager {
    kb: Arc<RwLock<KnowledgeBase>>,
    obs: Obs,
}

impl Default for DataManager {
    fn default() -> DataManager {
        DataManager::new(KnowledgeBase::default())
    }
}

impl DataManager {
    /// Wraps a knowledge base for shared use.
    pub fn new(kb: KnowledgeBase) -> DataManager {
        DataManager { kb: Arc::new(RwLock::new(kb)), obs: Obs::noop() }
    }

    /// Attaches an observability bundle: synchronization rounds then feed
    /// `osint_*` counters and an `osint.sync` trace event per round.
    pub fn attach_obs(&mut self, obs: &Obs) {
        self.obs = obs.clone();
    }

    /// Feeds one round's [`SyncStats`] into the attached registry.
    fn record_sync(&self, what: &'static str, stats: &SyncStats) {
        let reg = &self.obs.registry;
        reg.counter("osint_sync_rounds_total").inc();
        reg.counter("osint_vulns_parsed_total").add(stats.parsed as u64);
        reg.counter("osint_vulns_retained_total").add(stats.retained as u64);
        reg.counter("osint_enrichments_applied_total").add(stats.enrichments_applied as u64);
        reg.counter("osint_enrichments_buffered_total").add(stats.enrichments_buffered as u64);
        self.obs.tracer.event(
            "osint.sync",
            vec![
                ("what", FieldValue::from(what)),
                ("parsed", FieldValue::from(stats.parsed)),
                ("retained", FieldValue::from(stats.retained)),
                ("applied", FieldValue::from(stats.enrichments_applied)),
                ("buffered", FieldValue::from(stats.enrichments_buffered)),
            ],
        );
    }

    /// Runs `f` with read access to the knowledge base.
    pub fn read<R>(&self, f: impl FnOnce(&KnowledgeBase) -> R) -> R {
        f(&self.kb.read())
    }

    /// Runs `f` with write access to the knowledge base.
    pub fn write<R>(&self, f: impl FnOnce(&mut KnowledgeBase) -> R) -> R {
        f(&mut self.kb.write())
    }

    /// Parses NVD feed documents and upserts their vulnerabilities.
    ///
    /// # Errors
    ///
    /// Returns the first [`FeedError`] encountered; earlier documents remain
    /// applied (each sync round is itself idempotent, so retrying after a
    /// fix is safe).
    pub fn sync_feeds<S: AsRef<str>>(&self, feed_documents: &[S]) -> Result<SyncStats, FeedError> {
        let mut stats = SyncStats::default();
        for doc in feed_documents {
            let vulns = NvdFeed::parse(doc.as_ref())?.to_vulnerabilities()?;
            stats.parsed += vulns.len();
            let mut kb = self.kb.write();
            for v in vulns {
                if kb.upsert(v) {
                    stats.retained += 1;
                }
            }
        }
        self.record_sync("feeds", &stats);
        Ok(stats)
    }

    /// Crawls the secondary sources concurrently (one worker per source) and
    /// applies everything they report since `since`.
    ///
    /// # Errors
    ///
    /// Returns **every** [`SourceError`] of the round (sorted by source name
    /// for determinism), not just the first — an operator fixing a broken
    /// round deserves the complete damage report. Enrichments from healthy
    /// sources are still applied (partial progress is fine — rounds are
    /// idempotent).
    pub fn sync_sources(
        &self,
        sources: &[&(dyn OsintSource + Sync)],
        since: Date,
    ) -> Result<SyncStats, SyncError> {
        let (stats, mut errors) = self.crawl(sources, since, RetryPolicy::none());
        if errors.is_empty() {
            self.record_sync("sources", &stats);
            Ok(stats)
        } else {
            errors.sort_by(|a, b| a.source.cmp(b.source).then_with(|| a.detail.cmp(&b.detail)));
            Err(SyncError::Sources(errors))
        }
    }

    /// [`sync_sources`](DataManager::sync_sources) that **degrades instead
    /// of failing**: each source is retried under `policy` (capped
    /// exponential backoff), and sources that stay down are dropped from
    /// the round rather than aborting it. The knowledge base keeps whatever
    /// the healthy sources delivered; the casualties come back sorted by
    /// source name alongside the stats.
    ///
    /// Failures are visible, not silent: `osint_source_failures_total`
    /// (per source), `osint_source_retries_total`, and
    /// `osint_degraded_syncs_total` count every degradation on the attached
    /// registry.
    pub fn sync_sources_degraded(
        &self,
        sources: &[&(dyn OsintSource + Sync)],
        since: Date,
        policy: RetryPolicy,
    ) -> (SyncStats, Vec<SourceError>) {
        let (mut stats, mut errors) = self.crawl(sources, since, policy);
        errors.sort_by(|a, b| a.source.cmp(b.source).then_with(|| a.detail.cmp(&b.detail)));
        stats.sources_failed = errors.len();
        let reg = &self.obs.registry;
        for e in &errors {
            reg.counter_with("osint_source_failures_total", &[("source", e.source)]).inc();
        }
        reg.counter("osint_source_retries_total").add(stats.source_retries as u64);
        if !errors.is_empty() {
            reg.counter("osint_degraded_syncs_total").inc();
        }
        self.record_sync("sources", &stats);
        (stats, errors)
    }

    /// The shared worker pool behind both source-sync flavours: one worker
    /// per source retrying under `policy`, enrichments applied as they
    /// stream in, final errors collected (in channel order — callers sort).
    fn crawl(
        &self,
        sources: &[&(dyn OsintSource + Sync)],
        since: Date,
        policy: RetryPolicy,
    ) -> (SyncStats, Vec<SourceError>) {
        let mut stats = SyncStats::default();
        let mut errors = Vec::new();
        let (tx, rx) = channel::unbounded();
        std::thread::scope(|scope| {
            for &source in sources {
                let tx = tx.clone();
                scope.spawn(move || {
                    let mut retries = 0usize;
                    let mut result = source.fetch(since);
                    while result.is_err() && (retries as u32) < policy.max_attempts.max(1) - 1 {
                        let wait = policy.backoff_ms(retries as u32);
                        if wait > 0 {
                            std::thread::sleep(std::time::Duration::from_millis(wait));
                        }
                        retries += 1;
                        result = source.fetch(since);
                    }
                    // The receiver outlives all workers within the scope.
                    let _ = tx.send((result, retries));
                });
            }
            drop(tx);
            // Apply as results stream in; a single writer thread avoids
            // write-lock contention between workers.
            for (result, retries) in rx {
                stats.source_retries += retries;
                match result {
                    Ok(enrichments) => {
                        let mut kb = self.kb.write();
                        for e in enrichments {
                            if kb.apply_enrichment(e) {
                                stats.enrichments_applied += 1;
                            } else {
                                stats.enrichments_buffered += 1;
                            }
                        }
                    }
                    Err(e) => errors.push(e),
                }
            }
        });
        (stats, errors)
    }

    /// Full round: feeds first (so CVEs exist), then sources.
    ///
    /// # Errors
    ///
    /// Propagates feed errors as `Err(Ok(_))`-free [`SyncError`].
    pub fn sync_round<S: AsRef<str>>(
        &self,
        feed_documents: &[S],
        sources: &[&(dyn OsintSource + Sync)],
        since: Date,
    ) -> Result<SyncStats, SyncError> {
        let a = self.sync_feeds(feed_documents)?;
        let b = self.sync_sources(sources, since)?;
        Ok(SyncStats { parsed: a.parsed, retained: a.retained, ..b })
    }
}

/// Error from a full synchronization round.
#[derive(Debug)]
pub enum SyncError {
    /// An NVD feed was malformed.
    Feed(FeedError),
    /// One or more secondary sources failed; sorted by source name. Never
    /// empty.
    Sources(Vec<SourceError>),
}

impl SyncError {
    /// True when `source` is among the failed sources.
    pub fn involves(&self, source: &str) -> bool {
        match self {
            SyncError::Feed(_) => false,
            SyncError::Sources(errors) => errors.iter().any(|e| e.source == source),
        }
    }
}

impl std::fmt::Display for SyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncError::Feed(e) => write!(f, "feed sync failed: {e}"),
            SyncError::Sources(errors) => {
                write!(f, "{} source(s) failed:", errors.len())?;
                for e in errors {
                    write!(f, " [{e}]")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SyncError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SyncError::Feed(e) => Some(e),
            SyncError::Sources(errors) => errors.first().map(|e| e as _),
        }
    }
}

impl From<FeedError> for SyncError {
    fn from(e: FeedError) -> Self {
        SyncError::Feed(e)
    }
}

impl From<SourceError> for SyncError {
    fn from(e: SourceError) -> Self {
        SyncError::Sources(vec![e])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{OsFamily, OsVersion};
    use crate::cvss::CvssV3;
    use crate::feed::{NvdFeed, NvdItem};
    use crate::model::{AffectedPlatform, CveId, Vulnerability};
    use crate::sources::{DebianSource, ExploitDbSource, UbuntuSource};
    use crate::sources::{Enrichment, EnrichmentKind};

    fn feed_with(ids: &[u32]) -> String {
        let items: Vec<NvdItem> = ids
            .iter()
            .map(|&n| {
                let v = Vulnerability::new(
                    CveId::new(2018, n),
                    Date::from_ymd(2018, 5, 8),
                    CvssV3::CRITICAL_RCE,
                    format!("flaw {n} in the kernel"),
                )
                .affecting(AffectedPlatform::exact(
                    OsVersion::new(OsFamily::Ubuntu, "16.04").to_cpe(),
                ));
                NvdItem::from_vulnerability(&v)
            })
            .collect();
        NvdFeed::from_items(items).to_json()
    }

    #[test]
    fn feed_sync_counts() {
        let dm = DataManager::default();
        let stats = dm.sync_feeds(&[feed_with(&[1, 2, 3])]).unwrap();
        assert_eq!(stats.parsed, 3);
        assert_eq!(stats.retained, 3);
        assert_eq!(dm.read(|kb| kb.len()), 3);
    }

    #[test]
    fn concurrent_source_sync() {
        let dm = DataManager::default();
        dm.sync_feeds(&[feed_with(&[8897])]).unwrap();

        let exploitdb = ExploitDbSource::new(
            "id,file,description,date_published,author,type,platform,port,verified,codes\n\
             1,f,d,2018-05-21,a,local,linux,0,1,CVE-2018-8897\n",
        );
        let ubuntu =
            UbuntuSource::new(UbuntuSource::render(&[crate::sources::vendors::AdvisoryEntry {
                advisory: "USN-3641-1".into(),
                subject: "linux".into(),
                date: Date::from_ymd(2018, 5, 20),
                cves: vec![CveId::new(2018, 8897)],
                versions: vec!["16.04".into()],
            }]));
        let debian = DebianSource::default();

        let stats = dm.sync_sources(&[&exploitdb, &ubuntu, &debian], Date::EPOCH).unwrap();
        assert_eq!(stats.enrichments_applied, 2);
        dm.read(|kb| {
            let v = kb.get(CveId::new(2018, 8897)).unwrap();
            assert!(v.is_exploited(Date::from_ymd(2018, 5, 21)));
            assert!(v.is_patched(Date::from_ymd(2018, 5, 20)));
        });
    }

    #[test]
    fn unknown_cves_buffer_and_later_apply() {
        let dm = DataManager::default();
        let exploitdb = ExploitDbSource::new(
            "id,file,description,date_published,author,type,platform,port,verified,codes\n\
             1,f,d,2018-05-21,a,local,linux,0,1,CVE-2018-8897\n",
        );
        let stats = dm.sync_sources(&[&exploitdb], Date::EPOCH).unwrap();
        assert_eq!(stats.enrichments_buffered, 1);
        dm.sync_feeds(&[feed_with(&[8897])]).unwrap();
        dm.read(|kb| {
            assert!(kb
                .get(CveId::new(2018, 8897))
                .unwrap()
                .is_exploited(Date::from_ymd(2018, 6, 1)));
        });
    }

    #[test]
    fn source_errors_all_propagate_but_good_sources_apply() {
        let dm = DataManager::default();
        dm.sync_feeds(&[feed_with(&[1])]).unwrap();
        let bad = ExploitDbSource::new(""); // empty doc → error
        let bad_ubuntu = UbuntuSource::new("USN-9999-1: truncated entry"); // missing date line
        let good = ExploitDbSource::new(
            "id,file,description,date_published,author,type,platform,port,verified,codes\n\
             1,f,d,2018-05-21,a,local,linux,0,1,CVE-2018-0001\n",
        );
        let err = dm.sync_sources(&[&bad, &bad_ubuntu, &good], Date::EPOCH).unwrap_err();
        // every casualty is reported, sorted by source name
        let SyncError::Sources(errors) = &err else { panic!("expected Sources: {err:?}") };
        assert_eq!(errors.len(), 2, "{errors:?}");
        assert!(err.involves("exploit-db") && err.involves("ubuntu-usn"), "{errors:?}");
        assert!(errors.windows(2).all(|w| w[0].source <= w[1].source));
        // the healthy source still landed
        dm.read(|kb| {
            assert!(kb.get(CveId::new(2018, 1)).unwrap().is_exploited(Date::from_ymd(2018, 6, 1)));
        });
    }

    /// A source that fails `fail_times` fetches before recovering — the
    /// transient-transport case [`RetryPolicy`] exists for.
    struct FlakySource {
        fail_times: usize,
        calls: std::sync::atomic::AtomicUsize,
        inner: ExploitDbSource,
    }

    impl OsintSource for FlakySource {
        fn name(&self) -> &'static str {
            "flaky"
        }
        fn fetch(&self, since: Date) -> Result<Vec<Enrichment>, SourceError> {
            let n = self.calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            if n < self.fail_times {
                return Err(SourceError::new("flaky", format!("transient outage {n}")));
            }
            self.inner.fetch(since)
        }
    }

    fn flaky(fail_times: usize) -> FlakySource {
        FlakySource {
            fail_times,
            calls: std::sync::atomic::AtomicUsize::new(0),
            inner: ExploitDbSource::new(
                "id,file,description,date_published,author,type,platform,port,verified,codes\n\
                 1,f,d,2018-05-21,a,local,linux,0,1,CVE-2018-0001\n",
            ),
        }
    }

    #[test]
    fn degraded_sync_retries_transient_failures() {
        let mut dm = DataManager::default();
        let obs = Obs::unclocked();
        dm.attach_obs(&obs);
        dm.sync_feeds(&[feed_with(&[1])]).unwrap();
        let source = flaky(2);
        let policy = RetryPolicy { max_attempts: 3, base_backoff_ms: 1, max_backoff_ms: 2 };
        let (stats, failures) = dm.sync_sources_degraded(&[&source], Date::EPOCH, policy);
        assert!(failures.is_empty(), "{failures:?}");
        assert_eq!(stats.source_retries, 2);
        assert_eq!(stats.enrichments_applied, 1);
        assert_eq!(obs.registry.counter("osint_source_retries_total").get(), 2);
        assert_eq!(obs.registry.counter("osint_degraded_syncs_total").get(), 0);
    }

    #[test]
    fn degraded_sync_survives_a_dead_source_and_counts_it() {
        let mut dm = DataManager::default();
        let obs = Obs::unclocked();
        dm.attach_obs(&obs);
        dm.sync_feeds(&[feed_with(&[1])]).unwrap();
        let dead = ExploitDbSource::new(""); // fails every attempt
        let good = ExploitDbSource::new(
            "id,file,description,date_published,author,type,platform,port,verified,codes\n\
             1,f,d,2018-05-21,a,local,linux,0,1,CVE-2018-0001\n",
        );
        let policy = RetryPolicy { max_attempts: 2, base_backoff_ms: 1, max_backoff_ms: 1 };
        let (stats, failures) = dm.sync_sources_degraded(&[&dead, &good], Date::EPOCH, policy);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].source, "exploit-db");
        assert_eq!(stats.sources_failed, 1);
        // the healthy source's enrichment landed despite the casualty
        assert_eq!(stats.enrichments_applied, 1);
        dm.read(|kb| {
            assert!(kb.get(CveId::new(2018, 1)).unwrap().is_exploited(Date::from_ymd(2018, 6, 1)));
        });
        let reg = &obs.registry;
        assert_eq!(reg.counter("osint_degraded_syncs_total").get(), 1);
        assert_eq!(
            reg.counter_with("osint_source_failures_total", &[("source", "exploit-db")]).get(),
            1
        );
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let policy = RetryPolicy { max_attempts: 5, base_backoff_ms: 50, max_backoff_ms: 400 };
        assert_eq!(policy.backoff_ms(0), 50);
        assert_eq!(policy.backoff_ms(1), 100);
        assert_eq!(policy.backoff_ms(2), 200);
        assert_eq!(policy.backoff_ms(3), 400);
        assert_eq!(policy.backoff_ms(9), 400, "saturates at the cap");
        assert_eq!(RetryPolicy::none().backoff_ms(0), 0);
    }

    #[test]
    fn attached_obs_counts_sync_rounds() {
        let mut dm = DataManager::default();
        let obs = Obs::unclocked();
        dm.attach_obs(&obs);
        dm.sync_feeds(&[feed_with(&[1, 2])]).unwrap();
        let exploitdb = ExploitDbSource::new(
            "id,file,description,date_published,author,type,platform,port,verified,codes\n\
             1,f,d,2018-05-21,a,local,linux,0,1,CVE-2018-0001\n",
        );
        dm.sync_sources(&[&exploitdb], Date::EPOCH).unwrap();
        let reg = &obs.registry;
        assert_eq!(reg.counter("osint_sync_rounds_total").get(), 2);
        assert_eq!(reg.counter("osint_vulns_parsed_total").get(), 2);
        assert_eq!(reg.counter("osint_enrichments_applied_total").get(), 1);
        assert!(obs.tracer.recent().iter().any(|e| e.name == "osint.sync"));
    }

    #[test]
    fn feed_error_propagates() {
        let dm = DataManager::default();
        assert!(matches!(dm.sync_feeds(&["{"]), Err(FeedError::Json(_))));
    }

    #[test]
    fn manual_enrichment_via_write() {
        let dm = DataManager::default();
        dm.sync_feeds(&[feed_with(&[1])]).unwrap();
        dm.write(|kb| {
            kb.apply_enrichment(Enrichment {
                cve: CveId::new(2018, 1),
                source: "manual",
                kind: EnrichmentKind::Exploit(crate::model::ExploitRecord {
                    published: Date::from_ymd(2018, 6, 1),
                    source: "manual".into(),
                    verified: true,
                }),
            });
        });
        assert_eq!(dm.read(|kb| kb.get(CveId::new(2018, 1)).unwrap().exploits.len()), 1);
    }
}
