//! The Data manager: the threaded collection pipeline of the control plane.
//!
//! Paper §5.1 (module 1): "The processing is carried out with several
//! threads cooperatively assembling as much data as possible about each
//! vulnerability — a queue is populated with requests pertaining a particular
//! vulnerability, and other threads will look for related data in additional
//! OSINT sources."
//!
//! [`DataManager`] owns the shared [`KnowledgeBase`] behind a
//! `parking_lot::RwLock`. Feed documents are parsed on the calling thread;
//! the secondary sources are crawled concurrently on scoped worker threads
//! that stream [`Enrichment`]s over a crossbeam channel back to an applier.

use std::sync::Arc;

use crossbeam::channel;
use lazarus_obs::{FieldValue, Obs};
use parking_lot::RwLock;

use crate::date::Date;
use crate::feed::{FeedError, NvdFeed};
use crate::kb::KnowledgeBase;
use crate::sources::{OsintSource, SourceError};

/// Statistics from one synchronization round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// Vulnerabilities parsed from the feeds.
    pub parsed: usize,
    /// Vulnerabilities retained (relevant to monitored products).
    pub retained: usize,
    /// Enrichments applied to known CVEs.
    pub enrichments_applied: usize,
    /// Enrichments buffered for unknown CVEs.
    pub enrichments_buffered: usize,
}

/// The shared, thread-safe knowledge base handle with feed/source sync.
#[derive(Debug, Clone)]
pub struct DataManager {
    kb: Arc<RwLock<KnowledgeBase>>,
    obs: Obs,
}

impl Default for DataManager {
    fn default() -> DataManager {
        DataManager::new(KnowledgeBase::default())
    }
}

impl DataManager {
    /// Wraps a knowledge base for shared use.
    pub fn new(kb: KnowledgeBase) -> DataManager {
        DataManager { kb: Arc::new(RwLock::new(kb)), obs: Obs::noop() }
    }

    /// Attaches an observability bundle: synchronization rounds then feed
    /// `osint_*` counters and an `osint.sync` trace event per round.
    pub fn attach_obs(&mut self, obs: &Obs) {
        self.obs = obs.clone();
    }

    /// Feeds one round's [`SyncStats`] into the attached registry.
    fn record_sync(&self, what: &'static str, stats: &SyncStats) {
        let reg = &self.obs.registry;
        reg.counter("osint_sync_rounds_total").inc();
        reg.counter("osint_vulns_parsed_total").add(stats.parsed as u64);
        reg.counter("osint_vulns_retained_total").add(stats.retained as u64);
        reg.counter("osint_enrichments_applied_total").add(stats.enrichments_applied as u64);
        reg.counter("osint_enrichments_buffered_total").add(stats.enrichments_buffered as u64);
        self.obs.tracer.event(
            "osint.sync",
            vec![
                ("what", FieldValue::from(what)),
                ("parsed", FieldValue::from(stats.parsed)),
                ("retained", FieldValue::from(stats.retained)),
                ("applied", FieldValue::from(stats.enrichments_applied)),
                ("buffered", FieldValue::from(stats.enrichments_buffered)),
            ],
        );
    }

    /// Runs `f` with read access to the knowledge base.
    pub fn read<R>(&self, f: impl FnOnce(&KnowledgeBase) -> R) -> R {
        f(&self.kb.read())
    }

    /// Runs `f` with write access to the knowledge base.
    pub fn write<R>(&self, f: impl FnOnce(&mut KnowledgeBase) -> R) -> R {
        f(&mut self.kb.write())
    }

    /// Parses NVD feed documents and upserts their vulnerabilities.
    ///
    /// # Errors
    ///
    /// Returns the first [`FeedError`] encountered; earlier documents remain
    /// applied (each sync round is itself idempotent, so retrying after a
    /// fix is safe).
    pub fn sync_feeds<S: AsRef<str>>(&self, feed_documents: &[S]) -> Result<SyncStats, FeedError> {
        let mut stats = SyncStats::default();
        for doc in feed_documents {
            let vulns = NvdFeed::parse(doc.as_ref())?.to_vulnerabilities()?;
            stats.parsed += vulns.len();
            let mut kb = self.kb.write();
            for v in vulns {
                if kb.upsert(v) {
                    stats.retained += 1;
                }
            }
        }
        self.record_sync("feeds", &stats);
        Ok(stats)
    }

    /// Crawls the secondary sources concurrently (one worker per source) and
    /// applies everything they report since `since`.
    ///
    /// # Errors
    ///
    /// Returns the first [`SourceError`]; enrichments from healthy sources
    /// are still applied (partial progress is fine — rounds are idempotent).
    pub fn sync_sources(
        &self,
        sources: &[&(dyn OsintSource + Sync)],
        since: Date,
    ) -> Result<SyncStats, SourceError> {
        let mut stats = SyncStats::default();
        let (tx, rx) = channel::unbounded();
        let first_error = std::thread::scope(|scope| {
            for &source in sources {
                let tx = tx.clone();
                scope.spawn(move || {
                    let result = source.fetch(since);
                    // The receiver outlives all workers within the scope.
                    let _ = tx.send(result);
                });
            }
            drop(tx);
            let mut first_error = None;
            // Apply as results stream in; a single writer thread avoids
            // write-lock contention between workers.
            for result in rx {
                match result {
                    Ok(enrichments) => {
                        let mut kb = self.kb.write();
                        for e in enrichments {
                            if kb.apply_enrichment(e) {
                                stats.enrichments_applied += 1;
                            } else {
                                stats.enrichments_buffered += 1;
                            }
                        }
                    }
                    Err(e) => first_error = first_error.or(Some(e)),
                }
            }
            first_error
        });
        match first_error {
            Some(e) => Err(e),
            None => {
                self.record_sync("sources", &stats);
                Ok(stats)
            }
        }
    }

    /// Full round: feeds first (so CVEs exist), then sources.
    ///
    /// # Errors
    ///
    /// Propagates feed errors as `Err(Ok(_))`-free [`SyncError`].
    pub fn sync_round<S: AsRef<str>>(
        &self,
        feed_documents: &[S],
        sources: &[&(dyn OsintSource + Sync)],
        since: Date,
    ) -> Result<SyncStats, SyncError> {
        let a = self.sync_feeds(feed_documents)?;
        let b = self.sync_sources(sources, since)?;
        Ok(SyncStats {
            parsed: a.parsed,
            retained: a.retained,
            enrichments_applied: b.enrichments_applied,
            enrichments_buffered: b.enrichments_buffered,
        })
    }
}

/// Error from a full synchronization round.
#[derive(Debug)]
pub enum SyncError {
    /// An NVD feed was malformed.
    Feed(FeedError),
    /// A secondary source document was malformed.
    Source(SourceError),
}

impl std::fmt::Display for SyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncError::Feed(e) => write!(f, "feed sync failed: {e}"),
            SyncError::Source(e) => write!(f, "source sync failed: {e}"),
        }
    }
}

impl std::error::Error for SyncError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SyncError::Feed(e) => Some(e),
            SyncError::Source(e) => Some(e),
        }
    }
}

impl From<FeedError> for SyncError {
    fn from(e: FeedError) -> Self {
        SyncError::Feed(e)
    }
}

impl From<SourceError> for SyncError {
    fn from(e: SourceError) -> Self {
        SyncError::Source(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{OsFamily, OsVersion};
    use crate::cvss::CvssV3;
    use crate::feed::{NvdFeed, NvdItem};
    use crate::model::{AffectedPlatform, CveId, Vulnerability};
    use crate::sources::{DebianSource, ExploitDbSource, UbuntuSource};
    use crate::sources::{Enrichment, EnrichmentKind};

    fn feed_with(ids: &[u32]) -> String {
        let items: Vec<NvdItem> = ids
            .iter()
            .map(|&n| {
                let v = Vulnerability::new(
                    CveId::new(2018, n),
                    Date::from_ymd(2018, 5, 8),
                    CvssV3::CRITICAL_RCE,
                    format!("flaw {n} in the kernel"),
                )
                .affecting(AffectedPlatform::exact(
                    OsVersion::new(OsFamily::Ubuntu, "16.04").to_cpe(),
                ));
                NvdItem::from_vulnerability(&v)
            })
            .collect();
        NvdFeed::from_items(items).to_json()
    }

    #[test]
    fn feed_sync_counts() {
        let dm = DataManager::default();
        let stats = dm.sync_feeds(&[feed_with(&[1, 2, 3])]).unwrap();
        assert_eq!(stats.parsed, 3);
        assert_eq!(stats.retained, 3);
        assert_eq!(dm.read(|kb| kb.len()), 3);
    }

    #[test]
    fn concurrent_source_sync() {
        let dm = DataManager::default();
        dm.sync_feeds(&[feed_with(&[8897])]).unwrap();

        let exploitdb = ExploitDbSource::new(
            "id,file,description,date_published,author,type,platform,port,verified,codes\n\
             1,f,d,2018-05-21,a,local,linux,0,1,CVE-2018-8897\n",
        );
        let ubuntu =
            UbuntuSource::new(UbuntuSource::render(&[crate::sources::vendors::AdvisoryEntry {
                advisory: "USN-3641-1".into(),
                subject: "linux".into(),
                date: Date::from_ymd(2018, 5, 20),
                cves: vec![CveId::new(2018, 8897)],
                versions: vec!["16.04".into()],
            }]));
        let debian = DebianSource::default();

        let stats = dm.sync_sources(&[&exploitdb, &ubuntu, &debian], Date::EPOCH).unwrap();
        assert_eq!(stats.enrichments_applied, 2);
        dm.read(|kb| {
            let v = kb.get(CveId::new(2018, 8897)).unwrap();
            assert!(v.is_exploited(Date::from_ymd(2018, 5, 21)));
            assert!(v.is_patched(Date::from_ymd(2018, 5, 20)));
        });
    }

    #[test]
    fn unknown_cves_buffer_and_later_apply() {
        let dm = DataManager::default();
        let exploitdb = ExploitDbSource::new(
            "id,file,description,date_published,author,type,platform,port,verified,codes\n\
             1,f,d,2018-05-21,a,local,linux,0,1,CVE-2018-8897\n",
        );
        let stats = dm.sync_sources(&[&exploitdb], Date::EPOCH).unwrap();
        assert_eq!(stats.enrichments_buffered, 1);
        dm.sync_feeds(&[feed_with(&[8897])]).unwrap();
        dm.read(|kb| {
            assert!(kb
                .get(CveId::new(2018, 8897))
                .unwrap()
                .is_exploited(Date::from_ymd(2018, 6, 1)));
        });
    }

    #[test]
    fn source_error_propagates_but_good_sources_apply() {
        let dm = DataManager::default();
        dm.sync_feeds(&[feed_with(&[1])]).unwrap();
        let bad = ExploitDbSource::new(""); // empty doc → error
        let good = ExploitDbSource::new(
            "id,file,description,date_published,author,type,platform,port,verified,codes\n\
             1,f,d,2018-05-21,a,local,linux,0,1,CVE-2018-0001\n",
        );
        let err = dm.sync_sources(&[&bad, &good], Date::EPOCH).unwrap_err();
        assert_eq!(err.source, "exploit-db");
        // the healthy source still landed
        dm.read(|kb| {
            assert!(kb.get(CveId::new(2018, 1)).unwrap().is_exploited(Date::from_ymd(2018, 6, 1)));
        });
    }

    #[test]
    fn attached_obs_counts_sync_rounds() {
        let mut dm = DataManager::default();
        let obs = Obs::unclocked();
        dm.attach_obs(&obs);
        dm.sync_feeds(&[feed_with(&[1, 2])]).unwrap();
        let exploitdb = ExploitDbSource::new(
            "id,file,description,date_published,author,type,platform,port,verified,codes\n\
             1,f,d,2018-05-21,a,local,linux,0,1,CVE-2018-0001\n",
        );
        dm.sync_sources(&[&exploitdb], Date::EPOCH).unwrap();
        let reg = &obs.registry;
        assert_eq!(reg.counter("osint_sync_rounds_total").get(), 2);
        assert_eq!(reg.counter("osint_vulns_parsed_total").get(), 2);
        assert_eq!(reg.counter("osint_enrichments_applied_total").get(), 1);
        assert!(obs.tracer.recent().iter().any(|e| e.name == "osint.sync"));
    }

    #[test]
    fn feed_error_propagates() {
        let dm = DataManager::default();
        assert!(matches!(dm.sync_feeds(&["{"]), Err(FeedError::Json(_))));
    }

    #[test]
    fn manual_enrichment_via_write() {
        let dm = DataManager::default();
        dm.sync_feeds(&[feed_with(&[1])]).unwrap();
        dm.write(|kb| {
            kb.apply_enrichment(Enrichment {
                cve: CveId::new(2018, 1),
                source: "manual",
                kind: EnrichmentKind::Exploit(crate::model::ExploitRecord {
                    published: Date::from_ymd(2018, 6, 1),
                    source: "manual".into(),
                    verified: true,
                }),
            });
        });
        assert_eq!(dm.read(|kb| kb.get(CveId::new(2018, 1)).unwrap().exploits.len()), 1);
    }
}
