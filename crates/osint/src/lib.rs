//! Vulnerability intelligence for Lazarus: data model, feed parsing,
//! OSINT sources, and the knowledge base.
//!
//! This crate is the data plane of the Lazarus control loop (paper §5.1,
//! "Data manager"). It provides:
//!
//! * [`model`] — CVE records with CPE applicability, patches and exploits;
//! * [`cvss`] — a complete CVSS v3.1 base-score implementation;
//! * [`cpe`] — CPE 2.3 parsing and platform matching;
//! * [`feed`] — the NVD JSON feed schema and parser;
//! * [`sources`] — specialized parsers for the eight secondary OSINT
//!   sources (ExploitDB, CVE-Details, and six vendor advisory sites);
//! * [`kb`] / [`datamgr`] — the indexed knowledge base and the threaded
//!   collection pipeline that fills it;
//! * [`synth`] — a seeded synthetic-world generator reproducing the
//!   statistical structure of the 2014–2018 history used in the paper;
//! * [`fixtures`] — the real CVEs quoted in the paper (Table 1, Figure 3,
//!   the May 2018 cluster);
//! * [`catalog`] — the OS versions studied in §6 and §7.
//!
//! # Quick example
//!
//! ```
//! use lazarus_osint::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Generate a small world, render it as NVD feeds, and ingest it the way
//! // a live deployment would.
//! let mut config = WorldConfig::paper_study(42);
//! config.end = Date::from_ymd(2014, 3, 1); // keep the doctest fast
//! let world = SyntheticWorld::generate(config);
//!
//! let dm = DataManager::new(KnowledgeBase::new());
//! dm.sync_feeds(&world.nvd_feeds())?;
//! let ubuntu = OsVersion::new(OsFamily::Ubuntu, "16.04").to_cpe();
//! let n = dm.read(|kb| kb.affecting(&ubuntu).count());
//! assert!(n <= dm.read(|kb| kb.len()));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod catalog;
pub mod cpe;
pub mod cvss;
pub mod datamgr;
pub mod date;
pub mod feed;
pub mod fixtures;
pub mod json;
pub mod kb;
pub mod model;
pub mod sources;
pub mod synth;

/// Convenience re-exports of the most used types.
pub mod prelude {
    pub use crate::catalog::{OsFamily, OsVersion};
    pub use crate::cpe::Cpe;
    pub use crate::cvss::{CvssV3, Severity};
    pub use crate::datamgr::DataManager;
    pub use crate::date::Date;
    pub use crate::feed::NvdFeed;
    pub use crate::kb::KnowledgeBase;
    pub use crate::model::{CveId, Vulnerability};
    pub use crate::sources::OsintSource;
    pub use crate::synth::{Campaign, SyntheticWorld, WorldConfig};
}
