//! Common Platform Enumeration (CPE) 2.3: product identifiers and matching.
//!
//! NVD lists the platforms affected by each vulnerability as CPE 2.3
//! formatted strings such as
//! `cpe:2.3:o:canonical:ubuntu_linux:16.04:*:*:*:lts:*:*:*`. The Lazarus data
//! manager matches these against the administrator-selected software stack of
//! each replica (paper §5.1, module 1) to decide which vulnerabilities are
//! relevant.
//!
//! # Examples
//!
//! ```
//! use lazarus_osint::cpe::Cpe;
//!
//! let listed: Cpe = "cpe:2.3:o:canonical:ubuntu_linux:16.04:*:*:*:*:*:*:*".parse()?;
//! let mine = Cpe::os("canonical", "ubuntu_linux", "16.04");
//! assert!(listed.matches(&mine));
//! # Ok::<(), lazarus_osint::cpe::ParseCpeError>(())
//! ```

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// The `part` component of a CPE name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpePart {
    /// `o` — operating system.
    Os,
    /// `a` — application.
    Application,
    /// `h` — hardware.
    Hardware,
    /// `*` — any.
    Any,
}

/// A single CPE 2.3 attribute value: a literal, the wildcard `*`, or `-`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CpeValue {
    /// `*` — matches anything.
    Any,
    /// `-` — "not applicable"; matches only `-` or `*`.
    Na,
    /// A literal value (lowercase by CPE convention).
    Literal(String),
}

impl CpeValue {
    fn parse(s: &str) -> CpeValue {
        match s {
            "*" => CpeValue::Any,
            "-" => CpeValue::Na,
            other => CpeValue::Literal(other.to_ascii_lowercase()),
        }
    }

    /// CPE name-matching for one attribute: `*` matches anything, `-`
    /// matches `-`/`*`, literals match case-insensitively.
    pub fn matches(&self, target: &CpeValue) -> bool {
        match (self, target) {
            (CpeValue::Any, _) | (_, CpeValue::Any) => true,
            (CpeValue::Na, CpeValue::Na) => true,
            (CpeValue::Literal(a), CpeValue::Literal(b)) => a == b,
            _ => false,
        }
    }

    /// The literal value, if this is a literal.
    pub fn as_literal(&self) -> Option<&str> {
        match self {
            CpeValue::Literal(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for CpeValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpeValue::Any => f.write_str("*"),
            CpeValue::Na => f.write_str("-"),
            CpeValue::Literal(s) => f.write_str(s),
        }
    }
}

/// A CPE 2.3 name. Only the attributes Lazarus uses (part, vendor, product,
/// version, update) are kept structured; the remaining five are preserved
/// verbatim for round-tripping.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cpe {
    /// Platform part.
    pub part: CpePart,
    /// Vendor, e.g. `canonical`.
    pub vendor: CpeValue,
    /// Product, e.g. `ubuntu_linux`.
    pub product: CpeValue,
    /// Version, e.g. `16.04`.
    pub version: CpeValue,
    /// Update / patch level.
    pub update: CpeValue,
    /// `edition:language:sw_edition:target_sw:target_hw:other`, verbatim.
    tail: [CpeValue; 6],
}

impl Cpe {
    /// Convenience constructor for an operating-system CPE with concrete
    /// vendor/product/version and wildcards elsewhere.
    pub fn os(vendor: &str, product: &str, version: &str) -> Cpe {
        Cpe {
            part: CpePart::Os,
            vendor: CpeValue::Literal(vendor.to_ascii_lowercase()),
            product: CpeValue::Literal(product.to_ascii_lowercase()),
            version: CpeValue::Literal(version.to_ascii_lowercase()),
            update: CpeValue::Any,
            tail: std::array::from_fn(|_| CpeValue::Any),
        }
    }

    /// Convenience constructor for an application CPE.
    pub fn app(vendor: &str, product: &str, version: &str) -> Cpe {
        Cpe { part: CpePart::Application, ..Cpe::os(vendor, product, version) }
    }

    /// True when `self` (as listed in a vulnerability report) matches the
    /// concrete platform `target`, attribute by attribute.
    pub fn matches(&self, target: &Cpe) -> bool {
        let part_ok = matches!(self.part, CpePart::Any)
            || matches!(target.part, CpePart::Any)
            || self.part == target.part;
        part_ok
            && self.vendor.matches(&target.vendor)
            && self.product.matches(&target.product)
            && self.version.matches(&target.version)
            && self.update.matches(&target.update)
    }

    /// True when both names identify the same vendor+product, ignoring
    /// version — the granularity at which vendor advisories report patches.
    pub fn same_product(&self, other: &Cpe) -> bool {
        self.vendor.matches(&other.vendor) && self.product.matches(&other.product)
    }
}

impl fmt::Display for Cpe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let part = match self.part {
            CpePart::Os => "o",
            CpePart::Application => "a",
            CpePart::Hardware => "h",
            CpePart::Any => "*",
        };
        write!(
            f,
            "cpe:2.3:{part}:{}:{}:{}:{}",
            self.vendor, self.product, self.version, self.update
        )?;
        for t in &self.tail {
            write!(f, ":{t}")?;
        }
        Ok(())
    }
}

/// Error returned when parsing a [`Cpe`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCpeError {
    detail: String,
}

impl fmt::Display for ParseCpeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid CPE 2.3 name: {}", self.detail)
    }
}

impl std::error::Error for ParseCpeError {}

impl FromStr for Cpe {
    type Err = ParseCpeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |d: &str| ParseCpeError { detail: format!("{d} in {s:?}") };
        let body = s.strip_prefix("cpe:2.3:").ok_or_else(|| err("missing cpe:2.3 prefix"))?;
        let fields: Vec<&str> = body.split(':').collect();
        if fields.len() != 11 {
            return Err(err(&format!("expected 11 components, found {}", fields.len())));
        }
        let part = match fields[0] {
            "o" => CpePart::Os,
            "a" => CpePart::Application,
            "h" => CpePart::Hardware,
            "*" => CpePart::Any,
            other => return Err(err(&format!("unknown part {other:?}"))),
        };
        if fields.iter().any(|f| f.is_empty()) {
            return Err(err("empty component"));
        }
        Ok(Cpe {
            part,
            vendor: CpeValue::parse(fields[1]),
            product: CpeValue::parse(fields[2]),
            version: CpeValue::parse(fields[3]),
            update: CpeValue::parse(fields[4]),
            tail: std::array::from_fn(|i| CpeValue::parse(fields[5 + i])),
        })
    }
}

/// Compares two dotted version strings numerically where possible
/// (`"10.2" > "10.10"` is false), falling back to lexicographic comparison of
/// non-numeric segments. Used to evaluate NVD `versionStart*`/`versionEnd*`
/// range constraints.
pub fn compare_versions(a: &str, b: &str) -> Ordering {
    let mut xa = a.split(['.', '-', '_']);
    let mut xb = b.split(['.', '-', '_']);
    loop {
        match (xa.next(), xb.next()) {
            (None, None) => return Ordering::Equal,
            (None, Some(_)) => return Ordering::Less,
            (Some(_), None) => return Ordering::Greater,
            (Some(sa), Some(sb)) => {
                let ord = match (sa.parse::<u64>(), sb.parse::<u64>()) {
                    (Ok(na), Ok(nb)) => na.cmp(&nb),
                    _ => sa.cmp(sb),
                };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
        }
    }
}

/// A version range constraint as attached to CPE matches in NVD feeds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VersionRange {
    /// Inclusive lower bound.
    pub start_including: Option<String>,
    /// Exclusive lower bound.
    pub start_excluding: Option<String>,
    /// Inclusive upper bound.
    pub end_including: Option<String>,
    /// Exclusive upper bound.
    pub end_excluding: Option<String>,
}

impl VersionRange {
    /// An unconstrained range (matches every version).
    pub fn any() -> VersionRange {
        VersionRange::default()
    }

    /// Range with an exclusive upper bound — NVD's most common shape
    /// ("before 2013.2.4").
    pub fn before(end_excluding: &str) -> VersionRange {
        VersionRange { end_excluding: Some(end_excluding.to_string()), ..Default::default() }
    }

    /// True when `version` satisfies every present bound.
    pub fn contains(&self, version: &str) -> bool {
        use Ordering::*;
        if let Some(s) = &self.start_including {
            if compare_versions(version, s) == Less {
                return false;
            }
        }
        if let Some(s) = &self.start_excluding {
            if compare_versions(version, s) != Greater {
                return false;
            }
        }
        if let Some(e) = &self.end_including {
            if compare_versions(version, e) == Greater {
                return false;
            }
        }
        if let Some(e) = &self.end_excluding {
            if compare_versions(version, e) != Less {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let s = "cpe:2.3:o:canonical:ubuntu_linux:16.04:*:*:*:lts:*:*:*";
        let cpe: Cpe = s.parse().unwrap();
        assert_eq!(cpe.to_string(), s);
        assert_eq!(cpe.part, CpePart::Os);
        assert_eq!(cpe.vendor.as_literal(), Some("canonical"));
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "cpe:/o:canonical:ubuntu_linux:16.04", // CPE 2.2 URI form
            "cpe:2.3:o:canonical",                 // too few components
            "cpe:2.3:q:v:p:1:*:*:*:*:*:*:*",       // bad part
            "cpe:2.3:o::p:1:*:*:*:*:*:*:*",        // empty component
        ] {
            assert!(bad.parse::<Cpe>().is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn wildcard_matching() {
        let listed: Cpe = "cpe:2.3:o:canonical:ubuntu_linux:*:*:*:*:*:*:*:*".parse().unwrap();
        assert!(listed.matches(&Cpe::os("canonical", "ubuntu_linux", "16.04")));
        assert!(listed.matches(&Cpe::os("Canonical", "UBUNTU_LINUX", "17.04")));
        assert!(!listed.matches(&Cpe::os("debian", "debian_linux", "8.0")));
    }

    #[test]
    fn exact_version_matching() {
        let listed = Cpe::os("canonical", "ubuntu_linux", "16.04");
        assert!(listed.matches(&Cpe::os("canonical", "ubuntu_linux", "16.04")));
        assert!(!listed.matches(&Cpe::os("canonical", "ubuntu_linux", "17.04")));
    }

    #[test]
    fn part_mismatch_fails() {
        let os = Cpe::os("oracle", "solaris", "11.2");
        let app = Cpe::app("oracle", "solaris", "11.2");
        assert!(!os.matches(&app));
    }

    #[test]
    fn same_product_ignores_version() {
        let a = Cpe::os("debian", "debian_linux", "7.0");
        let b = Cpe::os("debian", "debian_linux", "8.0");
        assert!(a.same_product(&b));
        assert!(!a.same_product(&Cpe::os("fedoraproject", "fedora", "24")));
    }

    #[test]
    fn version_comparison_is_numeric_aware() {
        use Ordering::*;
        assert_eq!(compare_versions("10.10", "10.2"), Greater);
        assert_eq!(compare_versions("2013.2.4", "2013.2.4"), Equal);
        assert_eq!(compare_versions("9.0.0", "9.0.1"), Less);
        assert_eq!(compare_versions("8.0", "8.0.1"), Less);
        assert_eq!(compare_versions("icehouse", "juno"), Less); // lexicographic fallback
    }

    #[test]
    fn version_ranges() {
        let r = VersionRange::before("2013.2.4");
        assert!(r.contains("2013.2"));
        assert!(!r.contains("2013.2.4"));
        let r = VersionRange {
            start_including: Some("9.0.0".into()),
            end_including: Some("9.0.1".into()),
            ..Default::default()
        };
        assert!(r.contains("9.0.0"));
        assert!(r.contains("9.0.1"));
        assert!(!r.contains("8.0.1"));
        assert!(!r.contains("9.0.2"));
        assert!(VersionRange::any().contains("anything"));
        let r = VersionRange { start_excluding: Some("1.0".into()), ..Default::default() };
        assert!(!r.contains("1.0"));
        assert!(r.contains("1.1"));
    }

    #[test]
    fn na_value_semantics() {
        let na = CpeValue::Na;
        assert!(na.matches(&CpeValue::Na));
        assert!(na.matches(&CpeValue::Any));
        assert!(!na.matches(&CpeValue::Literal("x".into())));
    }
}
