//! A small, dependency-free JSON reader/writer.
//!
//! The NVD feed module ([`crate::feed`]) is the only JSON consumer in the
//! workspace, and the workspace builds fully offline (no serde). This
//! module implements exactly what that schema needs: a strict RFC 8259
//! parser into a [`Value`] tree (order-preserving objects, `f64` numbers,
//! full string-escape handling including `\uXXXX` surrogate pairs) and a
//! compact writer whose float formatting round-trips exactly (Rust's
//! shortest-representation `Display`).

use std::fmt;

/// A parsed JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always stored as `f64`, like serde_json's lossy
    /// mode; the NVD schema has no 64-bit integers).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved so output is deterministic.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object's fields, or a schema error naming `what`.
    pub fn as_object(&self, what: &str) -> Result<&[(String, Value)], JsonError> {
        match self {
            Value::Object(fields) => Ok(fields),
            other => Err(JsonError::schema(format!(
                "expected object for {what}, found {}",
                other.kind()
            ))),
        }
    }

    /// The array's elements, or a schema error naming `what`.
    pub fn as_array(&self, what: &str) -> Result<&[Value], JsonError> {
        match self {
            Value::Array(items) => Ok(items),
            other => {
                Err(JsonError::schema(format!("expected array for {what}, found {}", other.kind())))
            }
        }
    }

    /// The string's contents, or a schema error naming `what`.
    pub fn as_str(&self, what: &str) -> Result<&str, JsonError> {
        match self {
            Value::String(s) => Ok(s),
            other => Err(JsonError::schema(format!(
                "expected string for {what}, found {}",
                other.kind()
            ))),
        }
    }

    /// The number, or a schema error naming `what`.
    pub fn as_f64(&self, what: &str) -> Result<f64, JsonError> {
        match self {
            Value::Number(n) => Ok(*n),
            other => Err(JsonError::schema(format!(
                "expected number for {what}, found {}",
                other.kind()
            ))),
        }
    }

    /// The boolean, or a schema error naming `what`.
    pub fn as_bool(&self, what: &str) -> Result<bool, JsonError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => {
                Err(JsonError::schema(format!("expected bool for {what}, found {}", other.kind())))
            }
        }
    }

    /// Looks up a field of an object (`None` for missing or non-object).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A required object field, or a schema error.
    pub fn req(&self, key: &str) -> Result<&Value, JsonError> {
        self.get(key).ok_or_else(|| JsonError::schema(format!("missing field `{key}`")))
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Serializes the tree as compact JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => {
                if n.is_finite() {
                    // Rust's shortest-roundtrip Display: parses back to the
                    // identical f64, e.g. 5.4 → "5.4", 5.0 → "5".
                    out.push_str(&n.to_string());
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax or schema error.
#[derive(Debug, Clone)]
pub struct JsonError {
    message: String,
    /// Byte offset of the error, when produced by the parser.
    offset: Option<usize>,
}

impl JsonError {
    fn syntax(message: impl Into<String>, offset: usize) -> JsonError {
        JsonError { message: message.into(), offset: Some(offset) }
    }

    /// Builds a schema-shape error (valid JSON, wrong structure).
    #[must_use]
    pub fn schema(message: impl Into<String>) -> JsonError {
        JsonError { message: message.into(), offset: None }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(at) => write!(f, "{} at byte {at}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (rejecting trailing garbage).
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::syntax("trailing characters", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::syntax(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(JsonError::syntax(
                format!("unexpected character `{}`", other as char),
                self.pos,
            )),
            None => Err(JsonError::syntax("unexpected end of input", self.pos)),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::syntax(format!("expected `{word}`"), self.pos))
        }
    }

    fn parse_object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(JsonError::syntax("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(JsonError::syntax("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::syntax("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.parse_unicode_escape()?;
                            out.push(c);
                            continue; // parse_unicode_escape consumed everything
                        }
                        _ => return Err(JsonError::syntax("bad escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(JsonError::syntax("control character in string", self.pos));
                }
                Some(_) => {
                    // Copy one UTF-8 code point (input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..end]).expect("utf8"));
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(JsonError::syntax("truncated \\u escape", self.pos));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| JsonError::syntax("bad \\u escape", self.pos))?;
        let v = u16::from_str_radix(hex, 16)
            .map_err(|_| JsonError::syntax("bad \\u escape", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_unicode_escape(&mut self) -> Result<char, JsonError> {
        let at = self.pos;
        let high = self.parse_hex4()?;
        if (0xD800..=0xDBFF).contains(&high) {
            // Surrogate pair: require \uXXXX low surrogate.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let low = self.parse_hex4()?;
                if (0xDC00..=0xDFFF).contains(&low) {
                    let c =
                        0x10000 + ((u32::from(high) - 0xD800) << 10) + (u32::from(low) - 0xDC00);
                    return char::from_u32(c)
                        .ok_or_else(|| JsonError::syntax("bad surrogate pair", at));
                }
            }
            return Err(JsonError::syntax("lone high surrogate", at));
        }
        if (0xDC00..=0xDFFF).contains(&high) {
            return Err(JsonError::syntax("lone low surrogate", at));
        }
        char::from_u32(u32::from(high)).ok_or_else(|| JsonError::syntax("bad \\u escape", at))
    }

    fn parse_number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>().map(Value::Number).map_err(|_| JsonError::syntax("bad number", start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("5.4").unwrap(), Value::Number(5.4));
        assert_eq!(parse("-12e2").unwrap(), Value::Number(-1200.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Value::String("a\nb".into()));
        let v = parse(r#"{"a": [1, {"b": false}], "c": "x"}"#).unwrap();
        assert_eq!(v.req("a").unwrap().as_array("a").unwrap().len(), 2);
        assert_eq!(v.req("c").unwrap().as_str("c").unwrap(), "x");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "1 2", "{'a':1}", ""] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(parse(r#""é""#).unwrap(), Value::String("é".into()));
        assert_eq!(parse(r#""🦀""#).unwrap(), Value::String("🦀".into()));
        assert!(parse(r#""\ud83e""#).is_err());
    }

    #[test]
    fn writer_round_trips() {
        let doc = r#"{"CVE_data_type":"CVE","n":5.4,"items":[{"ok":true,"t":"quote \" slash \\ nl \n"}],"empty":[],"nothing":null}"#;
        let v = parse(doc).unwrap();
        let emitted = v.to_json();
        assert_eq!(parse(&emitted).unwrap(), v);
        // Floats come back bit-identical through Display.
        assert!(emitted.contains("5.4"));
    }
}
