//! Synthetic OSINT world generation.
//!
//! The paper's §6 experiments replay four-plus years of real NVD history.
//! That corpus is not redistributable, so this module generates a synthetic
//! vulnerability history with the same *structure*, which is what the risk
//! experiments actually exercise:
//!
//! * **Campaigns.** The unit of generation is a *campaign*: one underlying
//!   weakness with a ground-truth set of affected OS versions. A campaign is
//!   published as one or more CVE entries; with configurable probability the
//!   entries are *split* — each lists only a subset of the truly affected
//!   platforms, exactly the NVD imprecision that Table 1 of the paper
//!   documents (three CVEs, same XSS, three "different" OS lists). Split
//!   entries share description phrasing, so description clustering can
//!   recover the hidden sharing while product-list counting cannot.
//! * **Sharing axes.** Campaigns are kernel-level (hit a kernel lineage),
//!   family-level (one distribution), package-base-level (the Deb or Rpm
//!   world), or application-level (a cross-platform component such as
//!   OpenStack or OpenSSL) — the empirically observed sharing structure
//!   from the OS-diversity studies the paper builds on.
//! * **Lifecycles.** Patches arrive per vendor with vendor-specific delays;
//!   exploits appear for a fraction of campaigns after (sometimes before)
//!   disclosure. These drive Eqs. 2–4.
//! * **Bursts.** Vulnerability discovery is bursty: a component that just
//!   produced CVEs is likely to produce more soon (an audit or a fuzzing
//!   campaign found a seam), then goes quiet. Each component carries an
//!   activity state with on/off hazards; campaigns only fire for active
//!   components. This is what makes *recency* informative — the property
//!   the Lazarus score exploits and raw CVSS ignores.
//!
//! The generated world can be rendered to genuine NVD JSON feeds and to each
//! secondary source's native document format, so the entire collection
//! pipeline (parsers included) runs exactly as it would against live data.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::catalog::{Kernel, OsFamily, OsVersion, PackageBase};
use crate::cpe::Cpe;
use crate::cvss::CvssV3;
use crate::date::Date;
use crate::feed::{NvdFeed, NvdItem};
use crate::model::{AffectedPlatform, CveId, ExploitRecord, PatchRecord, Vulnerability};
use crate::sources::vendors::AdvisoryEntry;
use crate::sources::{
    CveDetailsSource, DebianSource, ExploitDbSource, FreeBsdSource, MicrosoftSource, OracleSource,
    RedhatSource, UbuntuSource,
};

/// Broad vulnerability class, selecting description templates and CVSS shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VulnClass {
    /// Cross-site scripting in a web component.
    Xss,
    /// Memory-corruption / buffer overflow.
    Overflow,
    /// Local privilege escalation.
    PrivEsc,
    /// Remote code execution.
    Rce,
    /// Denial of service.
    DoS,
    /// Information disclosure.
    InfoLeak,
}

impl VulnClass {
    const ALL: [VulnClass; 6] = [
        VulnClass::Xss,
        VulnClass::Overflow,
        VulnClass::PrivEsc,
        VulnClass::Rce,
        VulnClass::DoS,
        VulnClass::InfoLeak,
    ];

    fn cvss(self) -> CvssV3 {
        let parse = |s: &str| s.parse::<CvssV3>().expect("static vector");
        match self {
            VulnClass::Xss => parse("CVSS:3.0/AV:N/AC:L/PR:L/UI:R/S:C/C:L/I:L/A:N"),
            VulnClass::Overflow => parse("CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H"),
            VulnClass::PrivEsc => parse("CVSS:3.0/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H"),
            VulnClass::Rce => parse("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"),
            VulnClass::DoS => parse("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:H"),
            VulnClass::InfoLeak => parse("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:L/I:N/A:N"),
        }
    }

    fn exploit_probability(self) -> f64 {
        match self {
            VulnClass::Rce => 0.35,
            VulnClass::Overflow => 0.25,
            VulnClass::PrivEsc => 0.30,
            VulnClass::Xss => 0.15,
            VulnClass::DoS => 0.10,
            VulnClass::InfoLeak => 0.08,
        }
    }
}

/// How widely a campaign's weakness is shared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignScope {
    /// A kernel flaw in one lineage (e.g. all Linux distributions).
    Kernel(Kernel),
    /// A flaw in one distribution family.
    Family(OsFamily),
    /// A packaged-software flaw shared across a package base.
    PackageBase(PackageBase),
    /// A cross-platform application present on several OSes.
    Application(&'static str),
}

/// One underlying weakness with ground truth about who it affects.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Stable index within the world.
    pub id: usize,
    /// Vulnerability class.
    pub class: VulnClass,
    /// Sharing scope.
    pub scope: CampaignScope,
    /// Ground-truth affected OS versions (may exceed what any CVE lists).
    pub affected: Vec<OsVersion>,
    /// Earliest public disclosure.
    pub published: Date,
    /// CVE ids published for this campaign.
    pub cves: Vec<CveId>,
    /// Whether the split entries were written too differently to cluster
    /// (see [`WorldConfig::stealth_probability`]).
    pub stealth: bool,
}

impl Campaign {
    /// Ground-truth test: does this campaign hit `os`?
    pub fn hits(&self, os: OsVersion) -> bool {
        self.affected.contains(&os)
    }
}

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// RNG seed; same seed + same config → identical world.
    pub seed: u64,
    /// First day of generated history (paper: 2014-01-01).
    pub start: Date,
    /// Last day (exclusive) of generated history.
    pub end: Date,
    /// OS versions in scope.
    pub oses: Vec<OsVersion>,
    /// Expected kernel-scope campaigns per 30 days.
    pub kernel_rate: f64,
    /// Expected family-scope campaigns per 30 days.
    pub family_rate: f64,
    /// Expected package-base campaigns per 30 days.
    pub package_rate: f64,
    /// Expected cross-platform application campaigns per 30 days.
    pub app_rate: f64,
    /// Probability a multi-OS campaign is published as split CVEs.
    pub split_probability: f64,
    /// Probability that a *split* campaign is also "stealthy": each vendor's
    /// CVE is written so differently that no text clustering can link them.
    /// These model the hidden sharing not even Lazarus can anticipate — the
    /// residual compromises the paper's Figure 5 shows for every strategy.
    pub stealth_probability: f64,
    /// Mean length (days) of a component's active (bursting) period.
    pub burst_on_days: f64,
    /// Mean length (days) of a component's quiet period.
    pub burst_off_days: f64,
}

impl WorldConfig {
    /// The paper's study setting: 21 OS versions, 2014-01-01 .. 2018-09-01.
    ///
    /// Rates are calibrated so that *within-family* sharing dominates (the
    /// empirical finding of the OS-diversity studies) while cross-family
    /// sharing — kernel-lineage and cross-platform applications — stays
    /// rare enough that well-chosen configurations have materially lower
    /// risk than random ones.
    pub fn paper_study(seed: u64) -> WorldConfig {
        WorldConfig {
            seed,
            start: Date::from_ymd(2014, 1, 1),
            end: Date::from_ymd(2018, 9, 1),
            oses: crate::catalog::study_oses(),
            // Rates are *attempt* rates; the per-component burst gating
            // passes ≈ 25% of attempts, so effective volumes are ~¼ of
            // these (≈ 0.7 / 6 / 0.7 / 1.6 campaigns per month).
            kernel_rate: 2.8,
            family_rate: 24.0,
            package_rate: 2.8,
            app_rate: 6.4,
            // Multi-vendor weaknesses are usually filed as separate
            // per-vendor CVEs (the Table 1 pattern), so the cross-platform
            // structure is rarely visible in any single product list.
            split_probability: 0.8,
            stealth_probability: 0.2,
            burst_on_days: 90.0,
            burst_off_days: 270.0,
        }
    }
}

/// Cross-platform applications and which families ship them.
const APPLICATIONS: [(&str, &[OsFamily]); 7] = [
    (
        "OpenStack Dashboard (Horizon)",
        &[
            OsFamily::Ubuntu,
            OsFamily::Debian,
            OsFamily::OpenSuse,
            OsFamily::Solaris,
            OsFamily::RedHat,
        ],
    ),
    (
        "OpenSSL",
        &[
            OsFamily::Ubuntu,
            OsFamily::Debian,
            OsFamily::Fedora,
            OsFamily::RedHat,
            OsFamily::FreeBsd,
            OsFamily::OpenBsd,
            OsFamily::Solaris,
        ],
    ),
    (
        "Samba",
        &[
            OsFamily::Ubuntu,
            OsFamily::Debian,
            OsFamily::Fedora,
            OsFamily::RedHat,
            OsFamily::FreeBsd,
        ],
    ),
    (
        "ntpd",
        &[
            OsFamily::FreeBsd,
            OsFamily::OpenBsd,
            OsFamily::Solaris,
            OsFamily::Debian,
            OsFamily::RedHat,
        ],
    ),
    (
        "the Java SE runtime",
        &[OsFamily::Windows, OsFamily::Solaris, OsFamily::Ubuntu, OsFamily::RedHat],
    ),
    (
        "the BIND DNS server",
        &[
            OsFamily::Debian,
            OsFamily::Ubuntu,
            OsFamily::FreeBsd,
            OsFamily::Solaris,
            OsFamily::RedHat,
        ],
    ),
    (
        "the X.Org server",
        &[
            OsFamily::Ubuntu,
            OsFamily::Debian,
            OsFamily::Fedora,
            OsFamily::OpenBsd,
            OsFamily::Solaris,
        ],
    ),
];

/// The generated world: ground truth plus the public record.
#[derive(Debug, Clone)]
pub struct SyntheticWorld {
    /// Generation parameters used.
    pub config: WorldConfig,
    /// Ground-truth campaigns.
    pub campaigns: Vec<Campaign>,
    /// Public CVE records (what NVD + secondary sources reveal).
    pub vulnerabilities: Vec<Vulnerability>,
}

impl SyntheticWorld {
    /// Generates a world from the configuration.
    pub fn generate(config: WorldConfig) -> SyntheticWorld {
        Generator::new(config).run()
    }

    /// Injects a hand-crafted attack bundle (see [`attacks`]): the
    /// vulnerabilities become part of the public record and the campaign of
    /// the ground truth.
    pub fn inject(&mut self, campaign: Campaign, vulns: Vec<Vulnerability>) {
        assert_eq!(
            campaign.cves.len(),
            vulns.len(),
            "campaign CVE list must match injected vulnerabilities"
        );
        self.campaigns.push(campaign);
        self.vulnerabilities.extend(vulns);
    }

    /// Renders the public record as NVD JSON feeds, one per calendar year.
    pub fn nvd_feeds(&self) -> Vec<String> {
        let mut years: std::collections::BTreeMap<i32, Vec<NvdItem>> = Default::default();
        for v in &self.vulnerabilities {
            years.entry(v.published.year()).or_default().push(NvdItem::from_vulnerability(v));
        }
        years.into_values().map(|items| NvdFeed::from_items(items).to_json()).collect()
    }

    /// Renders the ExploitDB index covering every exploited CVE.
    pub fn exploitdb_document(&self) -> String {
        use crate::sources::exploitdb::ExploitDbRow;
        let mut rows = Vec::new();
        for (i, v) in self.vulnerabilities.iter().enumerate() {
            for e in &v.exploits {
                rows.push(ExploitDbRow {
                    id: 40_000 + i as u32,
                    file: format!("exploits/multiple/{}.c", v.id),
                    description: format!("{} exploit", v.id),
                    date: e.published,
                    author: "synthetic".into(),
                    exploit_type: "remote",
                    platform: "multiple".into(),
                    port: 0,
                    verified: e.verified,
                    codes: vec![v.id],
                });
            }
        }
        ExploitDbSource::render_csv(&rows)
    }

    /// Renders each vendor's advisory document from the patch records.
    ///
    /// Returns `(ubuntu, debian, redhat, oracle, freebsd, microsoft)` raw
    /// documents, ready for the corresponding sources.
    pub fn vendor_documents(&self) -> VendorDocuments {
        let mut ubuntu = Vec::new();
        let mut debian = Vec::new();
        let mut redhat = Vec::new();
        let mut oracle = Vec::new();
        let mut freebsd = Vec::new();
        let mut microsoft = Vec::new();
        for (i, v) in self.vulnerabilities.iter().enumerate() {
            for p in &v.patches {
                let entry = |versions: Vec<String>| AdvisoryEntry {
                    advisory: p.advisory.clone(),
                    subject: "security update".into(),
                    date: p.released,
                    cves: vec![v.id],
                    versions,
                };
                match p.product.vendor.as_literal() {
                    Some("canonical") => ubuntu.push(entry(
                        p.product
                            .version
                            .as_literal()
                            .map(|s| vec![s.to_string()])
                            .unwrap_or_default(),
                    )),
                    Some("debian") => debian.push(entry(vec![])),
                    Some("redhat") | Some("fedoraproject") | Some("opensuse") => {
                        redhat.push(entry(vec![]))
                    }
                    Some("oracle") => oracle.push(entry(
                        p.product
                            .version
                            .as_literal()
                            .map(|s| vec![s.to_string()])
                            .unwrap_or_default(),
                    )),
                    Some("freebsd") | Some("openbsd") => freebsd.push(entry(vec![])),
                    Some("microsoft") => microsoft.push(entry(
                        p.product
                            .version
                            .as_literal()
                            .map(|s| vec![s.to_string()])
                            .unwrap_or_default(),
                    )),
                    _ => {}
                }
            }
            let _ = i;
        }
        VendorDocuments {
            ubuntu: UbuntuSource::render(&ubuntu),
            debian: DebianSource::render(&debian),
            redhat: RedhatSource::render(&redhat),
            oracle: OracleSource::render(&oracle),
            freebsd: FreeBsdSource::render(&freebsd),
            microsoft: MicrosoftSource::render(&microsoft),
            cvedetails: CveDetailsSource::render(
                &self
                    .vulnerabilities
                    .iter()
                    .filter_map(|v| v.first_exploit_date().map(|d| (v.id, 1u32, d)))
                    .collect::<Vec<_>>(),
            ),
        }
    }
}

/// The rendered vendor documents (see [`SyntheticWorld::vendor_documents`]).
#[derive(Debug, Clone)]
pub struct VendorDocuments {
    /// Ubuntu USN index page.
    pub ubuntu: String,
    /// Debian DSA list.
    pub debian: String,
    /// RedHat CVE table.
    pub redhat: String,
    /// Oracle CVE-to-advisory map.
    pub oracle: String,
    /// FreeBSD SA index.
    pub freebsd: String,
    /// Microsoft bulletin index.
    pub microsoft: String,
    /// CVE-Details listing.
    pub cvedetails: String,
}

// ---------------------------------------------------------------------------
// Generator internals
// ---------------------------------------------------------------------------

/// A component whose vulnerability discovery can burst.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ComponentKey {
    Family(OsFamily),
    Kernel(Kernel),
    Package(PackageBase),
    App(&'static str),
}

struct Generator {
    config: WorldConfig,
    rng: StdRng,
    next_cve: u32,
    next_campaign: usize,
    activity: std::collections::HashMap<ComponentKey, bool>,
}

impl Generator {
    fn new(config: WorldConfig) -> Generator {
        let rng = StdRng::seed_from_u64(config.seed);
        Generator {
            config,
            rng,
            next_cve: 1,
            next_campaign: 0,
            activity: std::collections::HashMap::new(),
        }
    }

    /// Daily activity update: active components go quiet with hazard
    /// `1/burst_on_days`, quiet ones wake with `1/burst_off_days`.
    fn update_activity(&mut self) {
        let on = self.config.burst_on_days.max(1.0);
        let off = self.config.burst_off_days.max(1.0);
        let stationary = off > 0.0; // components start mostly quiet
        let keys: Vec<ComponentKey> = OsFamily::ALL
            .iter()
            .map(|f| ComponentKey::Family(*f))
            .chain(
                [Kernel::Linux, Kernel::Nt, Kernel::FreeBsd, Kernel::OpenBsd, Kernel::SunOs]
                    .into_iter()
                    .map(ComponentKey::Kernel),
            )
            .chain(
                [PackageBase::Deb, PackageBase::Rpm, PackageBase::BsdPorts]
                    .into_iter()
                    .map(ComponentKey::Package),
            )
            .chain(APPLICATIONS.iter().map(|(name, _)| ComponentKey::App(name)))
            .collect();
        let init = on / (on + off);
        let _ = stationary;
        for key in keys {
            let state = match self.activity.get(&key) {
                Some(&s) => s,
                None => {
                    let s = self.rng.gen_bool(init);
                    self.activity.insert(key.clone(), s);
                    s
                }
            };
            let flipped =
                if state { !self.rng.gen_bool(1.0 / on) } else { self.rng.gen_bool(1.0 / off) };
            self.activity.insert(key, flipped);
        }
    }

    fn is_active(&self, key: &ComponentKey) -> bool {
        // Two streams never pause in reality: Windows ships fixes every
        // patch Tuesday, and the Linux kernel's CVE flow is continuous.
        // Keeping them always-on prevents the decayed metric from
        // re-admitting those monocultures during artificial quiet spells.
        if matches!(
            key,
            ComponentKey::Family(OsFamily::Windows) | ComponentKey::Kernel(Kernel::Linux)
        ) {
            return true;
        }
        self.activity.get(key).copied().unwrap_or(false)
    }

    fn run(mut self) -> SyntheticWorld {
        let mut campaigns = Vec::new();
        let mut vulnerabilities = Vec::new();
        let total_days = (self.config.end - self.config.start).max(0);
        for day in 0..total_days {
            let date = self.config.start + day;
            self.update_activity();
            let daily = |per_month: f64| per_month / 30.0;
            for _ in 0..bernoulli_count(&mut self.rng, daily(self.config.kernel_rate)) {
                self.spawn(CampaignKindPick::Kernel, date, &mut campaigns, &mut vulnerabilities);
            }
            for _ in 0..bernoulli_count(&mut self.rng, daily(self.config.family_rate)) {
                self.spawn(CampaignKindPick::Family, date, &mut campaigns, &mut vulnerabilities);
            }
            for _ in 0..bernoulli_count(&mut self.rng, daily(self.config.package_rate)) {
                self.spawn(CampaignKindPick::Package, date, &mut campaigns, &mut vulnerabilities);
            }
            for _ in 0..bernoulli_count(&mut self.rng, daily(self.config.app_rate)) {
                self.spawn(CampaignKindPick::App, date, &mut campaigns, &mut vulnerabilities);
            }
        }
        SyntheticWorld { config: self.config, campaigns, vulnerabilities }
    }

    fn spawn(
        &mut self,
        pick: CampaignKindPick,
        date: Date,
        campaigns: &mut Vec<Campaign>,
        vulnerabilities: &mut Vec<Vulnerability>,
    ) {
        let oses = self.config.oses.clone();
        let (scope, candidates): (CampaignScope, Vec<OsVersion>) = match pick {
            CampaignKindPick::Kernel => {
                let kernels: Vec<Kernel> = {
                    let mut ks: Vec<Kernel> = oses.iter().map(|o| o.family.kernel()).collect();
                    ks.sort_by_key(|k| format!("{k:?}"));
                    ks.dedup();
                    ks
                };
                let kernel = *kernels.choose(&mut self.rng).expect("nonempty catalog");
                let members: Vec<OsVersion> =
                    oses.iter().copied().filter(|o| o.family.kernel() == kernel).collect();
                (CampaignScope::Kernel(kernel), members)
            }
            CampaignKindPick::Family => {
                let families: Vec<OsFamily> = {
                    let mut fs: Vec<OsFamily> = oses.iter().map(|o| o.family).collect();
                    fs.sort();
                    fs.dedup();
                    fs
                };
                let family = *families.choose(&mut self.rng).expect("nonempty catalog");
                let members: Vec<OsVersion> =
                    oses.iter().copied().filter(|o| o.family == family).collect();
                (CampaignScope::Family(family), members)
            }
            CampaignKindPick::Package => {
                let bases = [PackageBase::Deb, PackageBase::Rpm, PackageBase::BsdPorts];
                let base = *bases.choose(&mut self.rng).expect("static");
                let members: Vec<OsVersion> =
                    oses.iter().copied().filter(|o| o.family.package_base() == base).collect();
                (CampaignScope::PackageBase(base), members)
            }
            CampaignKindPick::App => {
                let (name, fams) = APPLICATIONS.choose(&mut self.rng).expect("static");
                // Not every OS ships (or enables) the vulnerable component:
                // each campaign touches only a subset of the app's families.
                let mut fams: Vec<OsFamily> = fams.to_vec();
                fams.shuffle(&mut self.rng);
                let take = self.rng.gen_range(2..=3.min(fams.len()));
                fams.truncate(take);
                let members: Vec<OsVersion> =
                    oses.iter().copied().filter(|o| fams.contains(&o.family)).collect();
                (CampaignScope::Application(name), members)
            }
        };
        if candidates.is_empty() {
            return;
        }
        // Burst gating: quiet components do not produce campaigns.
        let key = match &scope {
            CampaignScope::Kernel(k) => ComponentKey::Kernel(*k),
            CampaignScope::Family(f) => ComponentKey::Family(*f),
            CampaignScope::PackageBase(b) => ComponentKey::Package(*b),
            CampaignScope::Application(name) => ComponentKey::App(name),
        };
        if !self.is_active(&key) {
            return;
        }
        // Within the scope, each version is affected with moderate
        // probability (version ranges rarely cover the whole line). Windows
        // is a monolithic product line: its flaws almost always span every
        // supported version simultaneously (the WannaCry pattern).
        let per_version = match (&pick, &scope) {
            (CampaignKindPick::Family, CampaignScope::Family(OsFamily::Windows)) => 0.95,
            (CampaignKindPick::Family, _) => 0.75,
            _ => 0.55,
        };
        let mut affected: Vec<OsVersion> =
            candidates.iter().copied().filter(|_| self.rng.gen_bool(per_version)).collect();
        if affected.is_empty() {
            affected.push(*candidates.choose(&mut self.rng).expect("nonempty"));
        }

        let class = *VulnClass::ALL.choose(&mut self.rng).expect("static");
        let campaign_id = self.next_campaign;
        self.next_campaign += 1;

        // Decide CVE splitting: multi-OS campaigns may surface as several
        // entries, each listing a strict subset of the truth.
        let multi_family = {
            let mut fams: Vec<OsFamily> = affected.iter().map(|o| o.family).collect();
            fams.sort();
            fams.dedup();
            fams.len() > 1
        };
        let split = multi_family && self.rng.gen_bool(self.config.split_probability);
        let stealth = split && self.rng.gen_bool(self.config.stealth_probability);
        let groups: Vec<Vec<OsVersion>> = if split {
            // One CVE per affected family, published within a coordinated-
            // disclosure window of a few weeks.
            let mut by_family: std::collections::BTreeMap<OsFamily, Vec<OsVersion>> =
                Default::default();
            for os in &affected {
                by_family.entry(os.family).or_default().push(*os);
            }
            by_family.into_values().collect()
        } else {
            vec![affected.clone()]
        };

        let component = self.component_name(&scope);
        let details = self.detail_words();
        let mut cves = Vec::new();
        for (gi, group) in groups.iter().enumerate() {
            let cve_date = if gi == 0 { date } else { date + self.rng.gen_range(2..21) };
            if cve_date >= self.config.end {
                continue;
            }
            let id = CveId::new(cve_date.year() as u16, 100_000 + self.next_cve);
            self.next_cve += 1;
            cves.push(id);

            // Stealthy campaigns re-draw the technical vocabulary per CVE,
            // so the entries no longer look alike.
            let group_details = if stealth && gi > 0 { self.detail_words() } else { details };
            let description =
                self.describe(class, &component, &group_details, group, campaign_id, gi);
            let mut v = Vulnerability::new(id, cve_date, class.cvss(), description);
            for os in group {
                v.affected.push(AffectedPlatform::exact(os.to_cpe()));
            }
            // Patches: per family in the group, vendor-specific delay.
            let families: Vec<OsFamily> = {
                let mut fs: Vec<OsFamily> = group.iter().map(|o| o.family).collect();
                fs.sort();
                fs.dedup();
                fs
            };
            for family in families {
                let delay = self.patch_delay(family);
                if let Some(days) = delay {
                    let released = cve_date + days;
                    if released < self.config.end + 365 {
                        v.patches.push(PatchRecord {
                            product: family_patch_cpe(family),
                            released,
                            advisory: advisory_name(family, id),
                        });
                    }
                }
            }
            // Exploit: class-dependent probability, mostly after disclosure.
            if self.rng.gen_bool(class.exploit_probability()) {
                let offset: i32 = if self.rng.gen_bool(0.1) {
                    -self.rng.gen_range(1..30) // weaponised before disclosure
                } else {
                    self.rng.gen_range(1..60)
                };
                v.exploits.push(ExploitRecord {
                    published: cve_date + offset,
                    source: "exploit-db".into(),
                    verified: self.rng.gen_bool(0.6),
                });
            }
            vulnerabilities.push(v);
        }
        if cves.is_empty() {
            return;
        }
        campaigns.push(Campaign {
            id: campaign_id,
            class,
            scope,
            affected,
            published: date,
            cves,
            stealth,
        });
    }

    fn component_name(&mut self, scope: &CampaignScope) -> String {
        match scope {
            CampaignScope::Kernel(Kernel::Linux) => "the Linux kernel".to_string(),
            CampaignScope::Kernel(Kernel::Nt) => "the Windows kernel".to_string(),
            CampaignScope::Kernel(Kernel::FreeBsd) => "the FreeBSD kernel".to_string(),
            CampaignScope::Kernel(Kernel::OpenBsd) => "the OpenBSD kernel".to_string(),
            CampaignScope::Kernel(Kernel::SunOs) => "the Solaris kernel".to_string(),
            CampaignScope::Family(f) => format!("the {f} base system"),
            CampaignScope::PackageBase(PackageBase::Deb) => "the apt package manager".to_string(),
            CampaignScope::PackageBase(PackageBase::Rpm) => "the rpm package manager".to_string(),
            CampaignScope::PackageBase(_) => "the ports packaging tools".to_string(),
            CampaignScope::Application(name) => name.to_string(),
        }
    }

    /// Picks the campaign's distinguishing technical vocabulary — the
    /// subcomponent and code-path words a real CVE description would name
    /// (e.g. "in the ioctl handler", "during TLS handshake parsing"). Words
    /// are drawn from a bounded pool, so they recur often enough across the
    /// corpus to enter the 200-term TF-IDF vocabulary, yet rarely enough
    /// that campaigns get near-unique signatures the clustering can key on.
    fn detail_words(&mut self) -> [&'static str; 2] {
        const SUBCOMPONENTS: [&str; 24] = [
            "ioctl handler",
            "packet parser",
            "memory allocator",
            "scheduler",
            "socket layer",
            "page cache",
            "filesystem driver",
            "tty subsystem",
            "usb stack",
            "crypto engine",
            "session manager",
            "request router",
            "template renderer",
            "metadata loader",
            "signature verifier",
            "handshake state machine",
            "option parser",
            "cache index",
            "reassembly queue",
            "privilege broker",
            "update channel",
            "logging daemon",
            "quota accountant",
            "timer wheel",
        ];
        const TRIGGERS: [&str; 16] = [
            "an oversized length field",
            "a negative offset",
            "a recursive entity expansion",
            "an off-by-one copy",
            "a race during teardown",
            "an unchecked return value",
            "a dangling pointer reuse",
            "an integer truncation",
            "a format specifier",
            "a symlink traversal",
            "an unvalidated redirect",
            "a replayed nonce",
            "a truncated certificate chain",
            "a stale file descriptor",
            "an unsigned comparison",
            "a double free",
        ];
        [
            SUBCOMPONENTS[self.rng.gen_range(0..SUBCOMPONENTS.len())],
            TRIGGERS[self.rng.gen_range(0..TRIGGERS.len())],
        ]
    }

    /// Builds a class-templated description. CVEs of one campaign share the
    /// campaign's subcomponent/trigger vocabulary plus heavily overlapping
    /// phrasing, but differ in the platform clause — mirroring the Table 1
    /// triplet, which a clustering pass should group.
    fn describe(
        &mut self,
        class: VulnClass,
        component: &str,
        details: &[&'static str; 2],
        group: &[OsVersion],
        campaign_id: usize,
        variant: usize,
    ) -> String {
        let platforms = group.iter().map(|o| o.to_string()).collect::<Vec<_>>().join(", ");
        let via = [
            "a crafted request",
            "a malformed packet",
            "a long argument string",
            "an unexpected sequence of messages",
        ][variant.min(3)];
        let core = match class {
            VulnClass::Xss => format!(
                "Cross-site scripting (XSS) vulnerability in {component} allows remote \
                 attackers to inject arbitrary web script or HTML via {via}"
            ),
            VulnClass::Overflow => format!(
                "Buffer overflow in {component} allows remote attackers to execute arbitrary \
                 code or cause a denial of service via {via}"
            ),
            VulnClass::PrivEsc => format!(
                "Improper privilege handling in {component} allows local users to gain root \
                 privileges via {via}"
            ),
            VulnClass::Rce => format!(
                "Remote code execution vulnerability in {component} allows unauthenticated \
                 attackers to run arbitrary commands via {via}"
            ),
            VulnClass::DoS => format!(
                "Unbounded resource consumption in {component} allows remote attackers to \
                 cause a denial of service via {via}"
            ),
            VulnClass::InfoLeak => format!(
                "Information disclosure in {component} allows remote attackers to read \
                 sensitive memory contents via {via}"
            ),
        };
        let _ = campaign_id;
        format!(
            "{core}. The flaw resides in the {} and is triggered by {}. Affects {platforms}.",
            details[0], details[1]
        )
    }

    /// Vendor patch delay in days; `None` models "no patch in the window".
    fn patch_delay(&mut self, family: OsFamily) -> Option<i32> {
        let (mean, none_prob) = match family {
            OsFamily::Ubuntu | OsFamily::Debian => (12.0, 0.05),
            OsFamily::Fedora | OsFamily::RedHat | OsFamily::OpenSuse => (18.0, 0.07),
            OsFamily::Windows => (30.0, 0.10), // monthly cadence
            OsFamily::FreeBsd | OsFamily::OpenBsd => (20.0, 0.08),
            OsFamily::Solaris => (45.0, 0.15), // quarterly CPU cadence
        };
        if self.rng.gen_bool(none_prob) {
            return None;
        }
        // Geometric-ish positive delay around the mean.
        let u: f64 = self.rng.gen_range(0.0_f64..1.0).max(1e-9);
        Some((1.0 + (-u.ln()) * mean).round() as i32)
    }
}

enum CampaignKindPick {
    Kernel,
    Family,
    Package,
    App,
}

fn family_patch_cpe(family: OsFamily) -> Cpe {
    let mut cpe = Cpe::os(family.cpe_vendor(), family.cpe_product(), "x");
    cpe.version = crate::cpe::CpeValue::Any;
    cpe
}

fn advisory_name(family: OsFamily, id: CveId) -> String {
    match family {
        OsFamily::Ubuntu => format!("USN-{}-1", id.number),
        OsFamily::Debian => format!("DSA-{}-1", id.number),
        OsFamily::RedHat | OsFamily::Fedora | OsFamily::OpenSuse => {
            format!("RHSA-{}:{}", id.year, id.number)
        }
        OsFamily::Windows => format!("MS{}-{:03}", id.year % 100, id.number % 1000),
        OsFamily::FreeBsd | OsFamily::OpenBsd => {
            format!("FreeBSD-SA-{}:{:02}", id.year % 100, id.number % 100)
        }
        OsFamily::Solaris => format!("bulletin{}", id.year),
    }
}

/// Draws how many events fire on one day given a daily expectation `< 1`
/// (Bernoulli) or `>= 1` (fixed part + Bernoulli remainder).
fn bernoulli_count(rng: &mut StdRng, daily_rate: f64) -> u32 {
    let whole = daily_rate.floor() as u32;
    let frac = daily_rate - daily_rate.floor();
    whole + u32::from(frac > 0.0 && rng.gen_bool(frac.min(1.0)))
}

/// Hand-crafted bundles reproducing the notable attacks of paper §6.2.
pub mod attacks {
    use super::*;

    /// One CVE of a bundle: `(id, description, listed OSes, patch delay,
    /// exploit delay)`.
    type BundleEntry<'a> = (CveId, &'a str, Vec<OsVersion>, Option<i32>, Option<i32>);

    fn bundle(
        world_next_id: usize,
        class: VulnClass,
        scope: CampaignScope,
        affected: Vec<OsVersion>,
        published: Date,
        entries: Vec<BundleEntry<'_>>,
    ) -> (Campaign, Vec<Vulnerability>) {
        let mut cves = Vec::new();
        let mut vulns = Vec::new();
        for (id, desc, listed, patch_delay, exploit_delay) in entries {
            cves.push(id);
            let mut v = Vulnerability::new(id, published, class.cvss(), desc.to_string());
            for os in &listed {
                v.affected.push(AffectedPlatform::exact(os.to_cpe()));
            }
            if let Some(d) = patch_delay {
                let families: Vec<OsFamily> = {
                    let mut fs: Vec<OsFamily> = listed.iter().map(|o| o.family).collect();
                    fs.sort();
                    fs.dedup();
                    fs
                };
                for f in families {
                    v.patches.push(PatchRecord {
                        product: family_patch_cpe(f),
                        released: published + d,
                        advisory: advisory_name(f, id),
                    });
                }
            }
            if let Some(d) = exploit_delay {
                v.exploits.push(ExploitRecord {
                    published: published + d,
                    source: "exploit-db".into(),
                    verified: true,
                });
            }
            vulns.push(v);
        }
        (
            Campaign { id: world_next_id, class, scope, affected, published, cves, stealth: false },
            vulns,
        )
    }

    fn versions(f: OsFamily, oses: &[OsVersion]) -> Vec<OsVersion> {
        oses.iter().copied().filter(|o| o.family == f).collect()
    }

    /// WannaCry-like: a wormable SMB RCE across every Windows version, with
    /// a weaponised exploit and late patches.
    pub fn wannacry(
        next_id: usize,
        oses: &[OsVersion],
        published: Date,
    ) -> (Campaign, Vec<Vulnerability>) {
        let windows = versions(OsFamily::Windows, oses);
        let entries = windows
            .iter()
            .enumerate()
            .map(|(i, os)| {
                (
                    CveId::new(published.year() as u16, 90_100 + i as u32),
                    "Remote code execution vulnerability in the SMBv1 server allows \
                     unauthenticated attackers to run arbitrary commands via crafted packets, \
                     as exploited in the wild by the EternalBlue toolkit.",
                    vec![*os],
                    Some(45),
                    Some(0),
                )
            })
            .collect();
        bundle(
            next_id,
            VulnClass::Rce,
            CampaignScope::Family(OsFamily::Windows),
            windows.clone(),
            published,
            entries,
        )
    }

    /// StackClash-like: a stack/heap collision in memory management hitting
    /// most (not all) versions of every Unix lineage at once — the paper's
    /// most destructive attack. Like the real Stack Clash, specific releases
    /// had mitigations (larger guard gaps), so a careful configuration can
    /// keep at most one affected replica — but only a strategy that flees on
    /// disclosure day survives the window.
    pub fn stackclash(
        next_id: usize,
        oses: &[OsVersion],
        published: Date,
    ) -> (Campaign, Vec<Vulnerability>) {
        // The newest release of each Unix family ships the mitigation.
        let newest_of_family = |f: OsFamily| -> Option<OsVersion> {
            oses.iter()
                .copied()
                .filter(|o| o.family == f)
                .max_by(|a, b| crate::cpe::compare_versions(a.version, b.version))
        };
        let mitigated: Vec<OsVersion> = OsFamily::ALL
            .iter()
            .filter(|f| **f != OsFamily::Windows)
            .filter_map(|f| newest_of_family(*f))
            .collect();
        let affected: Vec<OsVersion> = oses
            .iter()
            .copied()
            .filter(|o| o.family != OsFamily::Windows && !mitigated.contains(o))
            .collect();
        // Published as per-lineage CVEs (the real Stack Clash had separate
        // CVEs for Linux, FreeBSD, OpenBSD and Solaris).
        let lineages = [Kernel::Linux, Kernel::FreeBsd, Kernel::OpenBsd, Kernel::SunOs];
        let entries = lineages
            .iter()
            .enumerate()
            .filter_map(|(i, k)| {
                let listed: Vec<OsVersion> =
                    affected.iter().copied().filter(|o| o.family.kernel() == *k).collect();
                if listed.is_empty() {
                    return None;
                }
                Some((
                    CveId::new(published.year() as u16, 90_200 + i as u32),
                    "Improper privilege handling in the stack guard-page implementation \
                     allows local users to gain root privileges by clashing the stack with \
                     another memory region, as exploited through weakness stackclash.",
                    listed,
                    Some(30),
                    Some(7),
                ))
            })
            .collect();
        bundle(
            next_id,
            VulnClass::PrivEsc,
            CampaignScope::Kernel(Kernel::Linux),
            affected,
            published,
            entries,
        )
    }

    /// Petya-like: ransomware chaining an SMB flaw with a compromised
    /// software-update channel on Windows.
    pub fn petya(
        next_id: usize,
        oses: &[OsVersion],
        published: Date,
    ) -> (Campaign, Vec<Vulnerability>) {
        let windows = versions(OsFamily::Windows, oses);
        let entries = vec![
            (
                CveId::new(published.year() as u16, 90_300),
                "Remote code execution vulnerability in the SMBv1 server allows attackers to \
                 execute arbitrary code via crafted transaction packets, as chained by \
                 destructive ransomware.",
                windows.clone(),
                Some(40),
                Some(3),
            ),
            (
                CveId::new(published.year() as u16, 90_301),
                "Remote code execution vulnerability in a software update channel allows \
                 attackers to distribute and run arbitrary payloads, as chained by \
                 destructive ransomware.",
                windows.clone(),
                None,
                Some(3),
            ),
        ];
        bundle(
            next_id,
            VulnClass::Rce,
            CampaignScope::Family(OsFamily::Windows),
            windows,
            published,
            entries,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(seed: u64) -> WorldConfig {
        WorldConfig {
            seed,
            start: Date::from_ymd(2017, 1, 1),
            end: Date::from_ymd(2017, 7, 1),
            oses: crate::catalog::study_oses(),
            kernel_rate: 4.0,
            family_rate: 16.0,
            package_rate: 4.0,
            app_rate: 8.0,
            split_probability: 0.5,
            stealth_probability: 0.25,
            burst_on_days: 90.0,
            burst_off_days: 270.0,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticWorld::generate(small_config(42));
        let b = SyntheticWorld::generate(small_config(42));
        assert_eq!(a.vulnerabilities.len(), b.vulnerabilities.len());
        assert_eq!(a.campaigns.len(), b.campaigns.len());
        for (x, y) in a.vulnerabilities.iter().zip(&b.vulnerabilities) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticWorld::generate(small_config(1));
        let b = SyntheticWorld::generate(small_config(2));
        assert_ne!(
            a.vulnerabilities.iter().map(|v| v.id).collect::<Vec<_>>(),
            b.vulnerabilities.iter().map(|v| v.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn volume_is_plausible() {
        let w = SyntheticWorld::generate(small_config(7));
        // 6 months at ~8 campaigns/month.
        assert!(w.campaigns.len() > 20, "too few campaigns: {}", w.campaigns.len());
        assert!(w.campaigns.len() < 120, "too many campaigns: {}", w.campaigns.len());
        assert!(w.vulnerabilities.len() >= w.campaigns.len());
    }

    #[test]
    fn cves_listed_are_subset_of_ground_truth() {
        let w = SyntheticWorld::generate(small_config(11));
        for c in &w.campaigns {
            for cve in &c.cves {
                let v = w.vulnerabilities.iter().find(|v| v.id == *cve).unwrap();
                for os in &c.affected {
                    let _ = os;
                }
                // every listed platform is in the ground truth
                for p in &v.affected {
                    let covered = c.affected.iter().any(|os| p.matches(&os.to_cpe()));
                    assert!(covered, "{cve} lists a platform outside ground truth");
                }
            }
        }
    }

    #[test]
    fn split_campaigns_exist_and_understate_sharing() {
        let w = SyntheticWorld::generate(small_config(13));
        let split: Vec<&Campaign> = w.campaigns.iter().filter(|c| c.cves.len() > 1).collect();
        assert!(!split.is_empty(), "expected some split campaigns");
        for c in split {
            for cve in &c.cves {
                let v = w.vulnerabilities.iter().find(|v| v.id == *cve).unwrap();
                let listed_count = c.affected.iter().filter(|os| v.affects(&os.to_cpe())).count();
                assert!(
                    listed_count < c.affected.len(),
                    "split CVE should understate the campaign"
                );
            }
        }
    }

    #[test]
    fn campaign_members_share_detail_vocabulary() {
        let w = SyntheticWorld::generate(small_config(17));
        let detail = |desc: &str| -> String {
            let start = desc.find("resides in the ").expect("detail clause") + 15;
            desc[start..].split(" and is triggered").next().unwrap().to_string()
        };
        for c in w.campaigns.iter().filter(|c| c.cves.len() > 1 && !c.stealth) {
            let descs: Vec<&str> = c
                .cves
                .iter()
                .map(|cve| {
                    w.vulnerabilities.iter().find(|v| v.id == *cve).unwrap().description.as_str()
                })
                .collect();
            let first = detail(descs[0]);
            for d in &descs[1..] {
                assert_eq!(detail(d), first, "split CVEs share the subcomponent clause");
            }
        }
    }

    #[test]
    fn feeds_roundtrip_through_parser() {
        let w = SyntheticWorld::generate(small_config(19));
        let feeds = w.nvd_feeds();
        assert!(!feeds.is_empty());
        let mut parsed = 0;
        for feed in &feeds {
            parsed += NvdFeed::parse(feed).unwrap().to_vulnerabilities().unwrap().len();
        }
        assert_eq!(parsed, w.vulnerabilities.len());
    }

    #[test]
    fn sources_parse_generated_documents() {
        use crate::sources::OsintSource;
        let w = SyntheticWorld::generate(small_config(23));
        let docs = w.vendor_documents();
        let exploitdb = ExploitDbSource::new(w.exploitdb_document());
        let n_exploits = exploitdb.fetch(Date::EPOCH).unwrap().len();
        let expected: usize = w.vulnerabilities.iter().map(|v| v.exploits.len()).sum();
        assert_eq!(n_exploits, expected);
        // vendor documents parse without error
        UbuntuSource::new(docs.ubuntu).fetch(Date::EPOCH).unwrap();
        DebianSource::new(docs.debian).fetch(Date::EPOCH).unwrap();
        RedhatSource::new(docs.redhat).fetch(Date::EPOCH).unwrap();
        OracleSource::new(docs.oracle).fetch(Date::EPOCH).unwrap();
        FreeBsdSource::new(docs.freebsd).fetch(Date::EPOCH).unwrap();
        MicrosoftSource::new(docs.microsoft).fetch(Date::EPOCH).unwrap();
        CveDetailsSource::new(docs.cvedetails).fetch(Date::EPOCH).unwrap();
    }

    #[test]
    fn attack_bundles() {
        let oses = crate::catalog::study_oses();
        let d = Date::from_ymd(2018, 3, 1);
        let (wc, wv) = attacks::wannacry(900, &oses, d);
        assert_eq!(wc.affected.len(), 4); // all Windows versions
        assert_eq!(wv.len(), wc.cves.len());
        assert!(wv.iter().all(|v| v.is_exploited(d)));

        let (sc, sv) = attacks::stackclash(901, &oses, d);
        assert!(sc.affected.len() >= 8, "stackclash hits most Unixes");
        // the newest release of each Unix family ships the mitigation
        assert!(!sc.hits(OsVersion::new(OsFamily::OpenBsd, "6.1")));
        assert!(!sc.hits(OsVersion::new(OsFamily::Debian, "9")));
        assert!(sc.hits(OsVersion::new(OsFamily::Debian, "8")));
        assert_eq!(sv.len(), 4); // one CVE per lineage

        let (pc, pv) = attacks::petya(902, &oses, d);
        assert_eq!(pv.len(), 2);
        assert!(pc.hits(OsVersion::new(OsFamily::Windows, "10")));
        assert!(!pc.hits(OsVersion::new(OsFamily::Debian, "8")));
    }

    #[test]
    fn inject_extends_world() {
        let mut w = SyntheticWorld::generate(small_config(29));
        let n = w.vulnerabilities.len();
        let (c, v) =
            attacks::petya(usize::MAX, &w.config.oses.clone(), Date::from_ymd(2017, 6, 27));
        w.inject(c, v);
        assert_eq!(w.vulnerabilities.len(), n + 2);
    }
}
