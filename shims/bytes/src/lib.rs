//! In-tree stand-in for the `bytes` crate.
//!
//! The workspace builds fully offline; this shim provides the exact subset
//! of the `bytes` API the repository uses: [`Bytes`] (a cheaply-clonable,
//! immutable, reference-counted byte buffer), [`BytesMut`] (a growable
//! builder), and the [`BufMut`] write trait. Semantics match the real
//! crate for this subset: `Bytes::clone` is O(1), integers are written
//! big-endian, `freeze` transfers the builder's contents without copying
//! them again.

#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply-clonable immutable byte buffer.
///
/// Static slices are stored by reference (zero allocation); owned data is
/// behind an `Arc<[u8]>`, so `clone` only bumps a reference count.
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub const fn new() -> Bytes {
        Bytes(Repr::Static(&[]))
    }

    /// Wraps a static slice without copying.
    #[must_use]
    pub const fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes(Repr::Static(bytes))
    }

    /// Copies a slice into a new shared buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Repr::Shared(Arc::from(data)))
    }

    /// The buffer length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Repr::Shared(Arc::from(v)))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte builder; finish with [`BytesMut::freeze`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty builder.
    #[must_use]
    pub const fn new() -> BytesMut {
        BytesMut(Vec::new())
    }

    /// Creates an empty builder with `cap` bytes preallocated.
    #[must_use]
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`] without
    /// copying.
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Big-endian append-only write operations.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a `u16` in big-endian order.
    fn put_u16(&mut self, v: u16);
    /// Appends a `u32` in big-endian order.
    fn put_u32(&mut self, v: u32);
    /// Appends a `u64` in big-endian order.
    fn put_u64(&mut self, v: u64);
    /// Appends a slice verbatim.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_bytes_are_zero_copy() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(&b[..], b"hello");
        assert_eq!(b.len(), 5);
        let c = b.clone();
        assert_eq!(b, c);
    }

    #[test]
    fn builder_roundtrip_big_endian() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(7);
        m.put_u32(0x0102_0304);
        m.put_u64(0x0A0B_0C0D_0E0F_1011);
        m.put_slice(b"xy");
        let b = m.freeze();
        assert_eq!(b.len(), 1 + 4 + 8 + 2);
        assert_eq!(b[0], 7);
        assert_eq!(&b[1..5], &[1, 2, 3, 4]);
        assert_eq!(&b[13..], b"xy");
    }

    #[test]
    fn shared_clone_is_refcount_bump() {
        let b = Bytes::from(vec![1u8; 1024]);
        let c = b.clone();
        match (&b.0, &c.0) {
            (Repr::Shared(x), Repr::Shared(y)) => assert!(Arc::ptr_eq(x, y)),
            _ => panic!("expected shared representation"),
        }
    }
}
