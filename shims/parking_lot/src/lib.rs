//! In-tree stand-in for the `parking_lot` crate.
//!
//! The workspace builds fully offline; this shim wraps the std
//! synchronization primitives behind parking_lot's non-poisoning API:
//! `lock()`, `read()` and `write()` return guards directly (a poisoned
//! std lock is recovered rather than propagated, matching parking_lot's
//! behaviour of not poisoning at all).

#![warn(missing_docs)]

use std::fmt;
use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.0, f)
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
