//! In-tree stand-in for the `rand` crate.
//!
//! The workspace builds fully offline; this shim provides the subset of the
//! rand 0.8 API the repository uses: [`rngs::StdRng`] with
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension trait
//! (`gen_range`, `gen_bool`, `gen`), and [`seq::SliceRandom`]
//! (`choose`, `shuffle`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a fast,
//! high-quality, *deterministic* PRNG. Streams differ from the real
//! `StdRng` (which is ChaCha12), but every experiment in this repository
//! is only required to be a deterministic function of its seed, not to
//! match rand's historical output.

#![warn(missing_docs)]

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly-random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly-random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (a `Range` or `RangeInclusive`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from 64 uniform bits (the `Standard` distribution).
pub trait Standard {
    /// Derives a value from uniform bits.
    fn sample(bits: u64) -> Self;
}

impl Standard for u64 {
    fn sample(bits: u64) -> u64 {
        bits
    }
}

impl Standard for u32 {
    fn sample(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample(bits: u64) -> f64 {
        unit_f64(bits)
    }
}

impl Standard for bool {
    fn sample(bits: u64) -> bool {
        bits & 1 == 1
    }
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 mantissa bits → uniform multiples of 2^-53 in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that [`Rng::gen_range`] can sample from.
///
/// Mirroring real rand, this is a blanket impl over [`SampleUniform`]
/// element types so that `gen_range(1..30)` keeps integer-literal
/// fallback working.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types uniformly samplable from half-open and inclusive ranges.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[start, end)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;

    /// Uniform draw from `[start, end]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        T::sample_inclusive(rng, start, end)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                let offset = rng.next_u64() % span;
                (start as $wide).wrapping_add(offset as $wide) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let offset = rng.next_u64() % (span + 1);
                (start as $wide).wrapping_add(offset as $wide) as $t
            }
        }
    )*};
}

int_sample_uniform!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let u = unit_f64(rng.next_u64()) as $t;
                start + u * (end - start)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                // Measure-zero difference from half-open; good enough here.
                Self::sample_half_open(rng, start, end)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded via
    /// SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: Vec<u64> =
            (0..16).map(|_| StdRng::seed_from_u64(42).gen_range(0..u64::MAX)).collect();
        assert!(same.iter().all(|&v| v == same[0]));
        assert_ne!(a.gen_range(0..u64::MAX), c.gen_range(0..u64::MAX));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-30i32..900);
            assert!((-30..900).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(2..=3usize);
            assert!((2..=3).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits={hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
