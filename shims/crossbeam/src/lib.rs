//! In-tree stand-in for the `crossbeam` crate.
//!
//! The workspace builds fully offline; this shim backs crossbeam's
//! unbounded channel API with `std::sync::mpsc`, which has identical
//! semantics for the subset the repository uses (cloneable senders, a
//! single receiver per channel, `recv_timeout`, iteration until
//! disconnect).

#![warn(missing_docs)]

/// Multi-producer single-consumer channels.
pub mod channel {
    pub use std::sync::mpsc::{
        Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };

    /// Creates an unbounded channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn send_receive_and_disconnect() {
        let (tx, rx) = channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        let got: Vec<i32> = rx.into_iter().collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = channel::unbounded::<()>();
        let err = rx.recv_timeout(Duration::from_millis(1)).unwrap_err();
        assert_eq!(err, channel::RecvTimeoutError::Timeout);
        drop(tx);
        let err = rx.recv_timeout(Duration::from_millis(1)).unwrap_err();
        assert_eq!(err, channel::RecvTimeoutError::Disconnected);
    }
}
