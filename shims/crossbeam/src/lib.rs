//! In-tree stand-in for the `crossbeam` crate.
//!
//! The workspace builds fully offline; this shim backs crossbeam's
//! unbounded channel API with `std::sync::mpsc`, which has identical
//! semantics for the subset the repository uses (cloneable senders, a
//! single receiver per channel, `recv_timeout`, iteration until
//! disconnect). A shared depth counter adds crossbeam's `len()` — the
//! runtime's inbox-depth gauge reads it.

#![warn(missing_docs)]

/// Multi-producer single-consumer channels.
pub mod channel {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{mpsc, Arc};
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Cloneable sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
        depth: Arc<AtomicUsize>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Sender").finish_non_exhaustive()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender { inner: self.inner.clone(), depth: Arc::clone(&self.depth) }
        }
    }

    impl<T> Sender<T> {
        /// Queues `value`; fails only when the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)?;
            self.depth.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
        depth: Arc<AtomicUsize>,
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Receiver").finish_non_exhaustive()
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let value = self.inner.recv()?;
            self.depth.fetch_sub(1, Ordering::Relaxed);
            Ok(value)
        }

        /// Blocks up to `timeout` for a value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let value = self.inner.recv_timeout(timeout)?;
            self.depth.fetch_sub(1, Ordering::Relaxed);
            Ok(value)
        }

        /// Pops a value without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let value = self.inner.try_recv()?;
            self.depth.fetch_sub(1, Ordering::Relaxed);
            Ok(value)
        }

        /// Values sent but not yet received. Approximate under concurrent
        /// sends, like crossbeam's — sufficient for a backpressure gauge.
        #[must_use]
        pub fn len(&self) -> usize {
            self.depth.load(Ordering::Relaxed)
        }

        /// True when [`Receiver::len`] is zero.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;

        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    /// Draining iterator that ends when every sender is gone.
    #[derive(Debug)]
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            Iter { rx: self }
        }
    }

    /// Borrowing draining iterator.
    #[derive(Debug)]
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Creates an unbounded channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        let depth = Arc::new(AtomicUsize::new(0));
        (Sender { inner: tx, depth: Arc::clone(&depth) }, Receiver { inner: rx, depth })
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn send_receive_and_disconnect() {
        let (tx, rx) = channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        let got: Vec<i32> = rx.into_iter().collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = channel::unbounded::<()>();
        let err = rx.recv_timeout(Duration::from_millis(1)).unwrap_err();
        assert_eq!(err, channel::RecvTimeoutError::Timeout);
        drop(tx);
        let err = rx.recv_timeout(Duration::from_millis(1)).unwrap_err();
        assert_eq!(err, channel::RecvTimeoutError::Disconnected);
    }

    #[test]
    fn len_tracks_queued_values() {
        let (tx, rx) = channel::unbounded();
        assert_eq!(rx.len(), 0);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.len(), 1);
        assert!(!rx.is_empty());
        assert_eq!(rx.recv().unwrap(), 2);
        assert!(rx.is_empty());
    }
}
