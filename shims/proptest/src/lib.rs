//! In-tree stand-in for the `proptest` crate.
//!
//! The workspace builds fully offline; this shim provides the subset of
//! proptest the repository's property tests use: the [`proptest!`] macro
//! (with optional `#![proptest_config(..)]`), `prop_assert!` /
//! `prop_assert_eq!`, range strategies, string-pattern strategies,
//! [`option::of`] and [`collection::vec`].
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the seed of the failing iteration, which is enough to reproduce it
//! (every strategy here is a deterministic function of the per-case RNG).

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration, settable per `proptest!` block via
/// `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for API compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64, max_shrink_iters: 0 }
    }
}

/// Builds the deterministic RNG for one test case.
#[must_use]
pub fn case_rng(case: u64) -> StdRng {
    StdRng::seed_from_u64(0x5052_4F50_5445_5354 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A generator of random values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut StdRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

/// String-pattern strategy: a `&str` used as a strategy generates strings
/// loosely matching proptest's regex-style patterns.
///
/// Only the form the repository uses is interpreted — `\PC{lo,hi}`
/// ("any non-control characters, length lo..=hi"). Other patterns fall
/// back to printable strings of length 0..=32. That is sufficient for
/// robustness properties ("the parser is total"), which only need varied
/// inputs, not exact regex semantics.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let (lo, hi) = parse_repeat_bounds(self).unwrap_or((0, 32));
        let len = rng.gen_range(lo..=hi.max(lo));
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            out.push(random_char(rng));
        }
        out
    }
}

/// Extracts `{lo,hi}` repetition bounds from the tail of a pattern.
fn parse_repeat_bounds(pattern: &str) -> Option<(usize, usize)> {
    let open = pattern.rfind('{')?;
    let close = pattern.rfind('}')?;
    if close != pattern.len() - 1 || open >= close {
        return None;
    }
    let inner = &pattern[open + 1..close];
    let (lo, hi) = inner.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// A non-control character: mostly ASCII, with structural punctuation
/// weighted up (exercises parsers) and occasional multi-byte code points.
fn random_char(rng: &mut StdRng) -> char {
    const PUNCT: &[char] = &[
        ':', '/', '.', '-', '_', '*', ',', ';', '=', '+', '(', ')', '[', ']', '"', '\'', '#', '!',
        '?', '%', '&', '<', '>', '@', '~', '|', '\\', ' ',
    ];
    const WIDE: &[char] = &['é', 'ß', 'λ', 'Ж', '中', '日', '🦀', 'ø', 'ñ', '—'];
    match rng.gen_range(0..100u32) {
        0..=34 => rng.gen_range(b'a'..=b'z') as char,
        35..=49 => rng.gen_range(b'A'..=b'Z') as char,
        50..=69 => rng.gen_range(b'0'..=b'9') as char,
        70..=92 => PUNCT[rng.gen_range(0..PUNCT.len())],
        _ => WIDE[rng.gen_range(0..WIDE.len())],
    }
}

/// `Option` strategies.
pub mod option {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy wrapper generating `None` about a quarter of the time.
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `proptest::option::of`: an optional value from `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// A vector length specification: a fixed size or a `Range<usize>`.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing vectors of values from an element strategy.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `len` and whose elements come from `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Asserts a property-test condition (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running `cases` random iterations.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::case_rng(u64::from(__case));
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @run ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use crate::Strategy;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3i32..9, y in 0usize..4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 4);
        }
    }

    proptest! {
        #![proptest_config(proptest::ProptestConfig { cases: 5, ..proptest::ProptestConfig::default() })]

        #[test]
        fn config_override_applies(v in proptest::collection::vec(0u8..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 10));
        }
    }

    #[test]
    fn string_pattern_bounds() {
        let mut rng = crate::case_rng(1);
        for _ in 0..200 {
            let s = "\\PC{0,60}".generate(&mut rng);
            assert!(s.chars().count() <= 60);
        }
    }

    #[test]
    fn option_of_mixes_none_and_some() {
        let mut rng = crate::case_rng(2);
        let strat = crate::option::of(0i32..900);
        let drawn: Vec<Option<i32>> = (0..200).map(|_| strat.generate(&mut rng)).collect();
        assert!(drawn.iter().any(Option::is_none));
        assert!(drawn.iter().any(Option::is_some));
        assert!(drawn.iter().flatten().all(|&v| (0..900).contains(&v)));
    }
}
