//! In-tree stand-in for the `criterion` crate.
//!
//! The workspace builds fully offline; this shim provides the subset of
//! the criterion API the benches use — `criterion_group!` /
//! `criterion_main!`, benchmark groups with `throughput` and
//! `sample_size`, and `Bencher::{iter, iter_batched}` — backed by a
//! simple wall-clock harness. There are no statistics, plots, or saved
//! baselines; each benchmark reports mean ns/iter (and derived
//! throughput) to stdout, which is enough to compare hot-path changes.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Work-per-iteration hint used to derive throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]; accepted for API
/// compatibility (this harness always runs one setup per iteration).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
}

/// Opaque value sink preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { measurement: Duration::from_millis(300) }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup { criterion: self, throughput: None, _sample_size: 0 }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Criterion {
        run_benchmark(id, self.measurement, None, f);
        self
    }
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
    _sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput hint for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; this harness sizes runs by time.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self._sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, self.criterion.measurement, self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    measurement: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Calibration pass: find an iteration count filling `measurement`.
    let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let target = (measurement.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut bencher = Bencher { iters: target, elapsed: Duration::ZERO };
    f(&mut bencher);
    let ns = bencher.elapsed.as_nanos() as f64 / target as f64;

    let mut line = format!("{id:<40} {:>12.1} ns/iter", ns);
    match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let mbps = bytes as f64 / ns * 1e9 / (1024.0 * 1024.0);
            line.push_str(&format!("  {mbps:>10.1} MiB/s"));
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / ns * 1e9;
            line.push_str(&format!("  {eps:>10.0} elem/s"));
        }
        None => {}
    }
    println!("{line}");
}

/// Times the closure handed to each benchmark.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` over the harness-chosen iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Measures `routine` with a fresh un-timed `setup` input per
    /// iteration.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_iter_and_batched() {
        let mut c = Criterion { measurement: Duration::from_millis(5) };
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Bytes(8));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| 2 + 2));
    }
}
