//! Replaying a fixed nemesis schedule must be byte-identical: the JSON
//! report and the Prometheus metrics snapshot are pure functions of
//! (scenarios, seeds). This is what makes a failing `(scenario, seed)`
//! pair a complete, replayable bug report.

use lazarus::testbed::nemesis::run_matrix;

#[test]
fn replaying_a_nemesis_schedule_is_byte_identical() {
    let scenarios = ["lossy"];
    let seeds = [3u64, 7];

    let first = run_matrix(&scenarios, &seeds);
    let second = run_matrix(&scenarios, &seeds);

    // The machine-readable report (what the nemesis binary writes to
    // nemesis_results.json) replays byte-for-byte…
    assert_eq!(first.to_json().to_json(), second.to_json().to_json());
    // …and so does the metrics snapshot.
    assert_eq!(first.prometheus(), second.prometheus());

    // Sanity: the fixed schedule actually exercised faults and passed.
    assert!(first.passed(), "failures: {:?}", first.failures());
    assert_eq!(first.verdicts.len(), 2);
    assert!(first.verdicts.iter().all(|v| v.commits_checked > 0));
}
