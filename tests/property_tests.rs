//! Property-based tests (proptest) over the core invariants:
//! parser robustness, score bounds, risk monotonicity, Algorithm 1 set
//! invariants, clustering partitions, and consensus agreement under
//! arbitrary delivery schedules.

use proptest::prelude::*;

use lazarus::bft::client::Client;
use lazarus::bft::testkit::{TestCluster, TEST_SECRET};
use lazarus::bft::types::ClientId;
use lazarus::bft::Service as _;
use lazarus::nlp::kmeans::{kmeans, SparseVec};
use lazarus::nlp::text::tokenize;
use lazarus::nlp::VulnClusters;
use lazarus::osint::catalog::{OsFamily, OsVersion};
use lazarus::osint::cpe::Cpe;
use lazarus::osint::cvss::CvssV3;
use lazarus::osint::date::Date;
use lazarus::osint::kb::KnowledgeBase;
use lazarus::osint::model::{AffectedPlatform, CveId, ExploitRecord, PatchRecord, Vulnerability};
use lazarus::risk::algorithm::{Reconfigurator, ReplicaSets};
use lazarus::risk::oracle::RiskOracle;
use lazarus::risk::score::ScoreParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// The CVSS vector parser never panics on arbitrary input, and every
    /// successfully parsed vector round-trips through Display.
    #[test]
    fn cvss_parser_total(input in "\\PC{0,60}") {
        if let Ok(v) = input.parse::<CvssV3>() {
            let shown = v.to_string();
            prop_assert_eq!(shown.parse::<CvssV3>().unwrap(), v);
            let score = v.base_score();
            prop_assert!((0.0..=10.0).contains(&score));
        }
    }

    /// The CPE parser never panics; parsed names round-trip.
    #[test]
    fn cpe_parser_total(input in "\\PC{0,80}") {
        if let Ok(cpe) = input.parse::<Cpe>() {
            let shown = cpe.to_string();
            prop_assert_eq!(&shown.parse::<Cpe>().unwrap(), &cpe);
            let _ = cpe.matches(&cpe); // matching is total (no panic)
        }
    }

    /// Date arithmetic round-trips for every day in 1970–2100.
    #[test]
    fn date_roundtrip(days in 0i32..47_500) {
        let d = Date::from_days(days);
        let (y, m, day) = d.ymd();
        prop_assert_eq!(Date::from_ymd(y, m, day), d);
        prop_assert_eq!(d.to_string().parse::<Date>().unwrap(), d);
    }

    /// Eq. 1 is bounded: 0 ≤ score ≤ 1.25 × CVSS, for any lifecycle.
    #[test]
    fn score_bounds(
        age in 0i32..2000,
        patch_delay in proptest::option::of(0i32..900),
        exploit_delay in proptest::option::of(-30i32..900),
        cvss_idx in 0usize..4,
    ) {
        let vectors = [
            "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",
            "CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H",
            "CVSS:3.0/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H",
            "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:L/I:N/A:N",
        ];
        let published = Date::from_ymd(2016, 1, 1);
        let mut v = Vulnerability::new(
            CveId::new(2016, 1),
            published,
            vectors[cvss_idx].parse().unwrap(),
            "prop",
        );
        if let Some(d) = patch_delay {
            v.patches.push(PatchRecord {
                product: Cpe::os("canonical", "ubuntu_linux", "16.04"),
                released: published + d,
                advisory: "A".into(),
            });
        }
        if let Some(d) = exploit_delay {
            v.exploits.push(ExploitRecord {
                published: published + d,
                source: "edb".into(),
                verified: true,
            });
        }
        let params = ScoreParams::paper();
        let s = params.score(&v, published + age);
        prop_assert!(s >= 0.0);
        prop_assert!(s <= 1.25 * v.cvss.base_score() + 1e-9);
        // and the score never increases when a patch exists vs not
        let unpatched = Vulnerability { patches: vec![], ..v.clone() };
        prop_assert!(s <= params.score(&unpatched, published + age) + 1e-9);
    }

    /// Adding a shared vulnerability never decreases any configuration's
    /// risk (Eq. 5 monotonicity).
    #[test]
    fn risk_is_monotone_in_shared_vulns(
        extra in 1u32..8,
        pair in 0usize..3,
    ) {
        let universe = vec![
            OsVersion::new(OsFamily::Ubuntu, "16.04"),
            OsVersion::new(OsFamily::Debian, "8"),
            OsVersion::new(OsFamily::FreeBsd, "11"),
            OsVersion::new(OsFamily::Windows, "10"),
        ];
        let pairs = [(0usize, 1usize), (1, 2), (2, 3)];
        let (a, b) = pairs[pair];
        let day = Date::from_ymd(2018, 1, 1);
        let mk = |n: u32| -> Vulnerability {
            Vulnerability::new(CveId::new(2018, n), day, CvssV3::CRITICAL_RCE, format!("v{n}"))
                .affecting(AffectedPlatform::exact(universe[a].to_cpe()))
                .affecting(AffectedPlatform::exact(universe[b].to_cpe()))
        };
        let base_kb: KnowledgeBase = vec![mk(1)].into_iter().collect();
        let more_kb: KnowledgeBase = (1..=extra + 1).map(mk).collect();
        let params = ScoreParams::paper();
        let o1 = RiskOracle::build(&base_kb, &VulnClusters::new(), &universe, params);
        let o2 = RiskOracle::build(&more_kb, &VulnClusters::new(), &universe, params);
        let config = [0usize, 1, 2, 3];
        prop_assert!(o2.risk(&config, day) >= o1.risk(&config, day) - 1e-9);
    }

    /// Algorithm 1 preserves the CONFIG/POOL/QUARANTINE partition and the
    /// replica-set size for any sequence of monitoring rounds.
    #[test]
    fn algorithm1_partition_invariant(seed in 0u64..200, threshold in 1.0f64..200.0) {
        let universe = lazarus::osint::catalog::study_oses();
        let day = Date::from_ymd(2018, 3, 1);
        let mut kb = KnowledgeBase::new();
        // a deterministic spread of shared vulnerabilities
        for i in 0..30u32 {
            let a = (i as usize * 7) % universe.len();
            let b = (i as usize * 11 + 3) % universe.len();
            if a == b { continue; }
            kb.upsert(
                Vulnerability::new(CveId::new(2018, i), day - (i as i32 * 10), CvssV3::CRITICAL_RCE, format!("w{i}"))
                    .affecting(AffectedPlatform::exact(universe[a].to_cpe()))
                    .affecting(AffectedPlatform::exact(universe[b].to_cpe())),
            );
        }
        let oracle = RiskOracle::build(&kb, &VulnClusters::new(), &universe, ScoreParams::paper());
        let matrix = oracle.matrix(day);
        let recon = Reconfigurator::with_threshold(threshold);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sets = ReplicaSets::new(recon.initial_config(&matrix, 4, &mut rng), universe.len());
        for _ in 0..12 {
            recon.monitor(&mut sets, &matrix, &mut rng);
            prop_assert!(sets.is_partition());
            prop_assert_eq!(sets.config.len(), 4);
            prop_assert_eq!(
                sets.config.len() + sets.pool.len() + sets.quarantine.len(),
                universe.len()
            );
        }
    }

    /// K-means invariants: every point lands in exactly one cluster, and
    /// WCSS equals the recomputed distance sum.
    #[test]
    fn kmeans_partition_and_wcss(
        points in proptest::collection::vec(
            proptest::collection::vec(-10.0f64..10.0, 3), 1..40),
        k in 1usize..6,
        seed in 0u64..50,
    ) {
        let sparse: Vec<SparseVec> = points.iter().map(|p| SparseVec::from_dense(p)).collect();
        let c = kmeans(&sparse, k, seed);
        prop_assert_eq!(c.assignments.len(), points.len());
        prop_assert!(c.assignments.iter().all(|&a| a < c.k()));
        let recomputed: f64 = sparse
            .iter()
            .zip(&c.assignments)
            .map(|(p, &a)| {
                let cent = &c.centroids[a];
                let dense = p.to_dense();
                dense.iter().zip(cent).map(|(x, y)| (x - y) * (x - y)).sum::<f64>()
            })
            .sum();
        prop_assert!((recomputed - c.wcss).abs() < 1e-6 * (1.0 + recomputed));
    }

    /// The tokenizer is total and never yields stop words or short tokens.
    #[test]
    fn tokenizer_is_clean(text in "\\PC{0,200}") {
        for token in tokenize(&text) {
            prop_assert!(token.len() >= 3);
            prop_assert!(!lazarus::nlp::text::is_stop_word(&token));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Consensus agreement under arbitrary delivery schedules: whatever the
    /// interleaving, replicas that executed the same number of slots hold
    /// identical service state.
    /// Crashing the leader at an arbitrary point under an arbitrary delivery
    /// schedule always triggers a view change, and the in-flight operation
    /// still commits under the new leader.
    #[test]
    fn leader_crash_always_recovers(seed in 0u64..10_000, pre_ops in 0u32..4) {
        use lazarus::bft::replica::TimerId;
        use lazarus::bft::types::SeqNo;

        let mut cluster = TestCluster::new(4, 1000);
        cluster.randomize_delivery(seed);
        let mut client = Client::new(ClientId(1), cluster.membership(), TEST_SECRET);
        for i in 0..pre_ops {
            cluster.run_client_op(&mut client, &i.to_be_bytes());
        }
        let view_before = cluster.replica(1).view();
        let leader = (view_before.0 % 4) as u32;
        cluster.crash(leader);
        for (to, m) in client.invoke(bytes::Bytes::from_static(b"after-crash")) {
            cluster.inject(to, m);
        }
        cluster.run_to_quiescence();
        // Watchdog: the first strike forwards the pending request to the
        // (dead) leader, the second stops the view. Unlucky schedules may
        // need another round of ticks, so allow a few.
        let mut completed = false;
        for _ in 0..6 {
            cluster.fire_timers(TimerId::Request);
            cluster.run_to_quiescence();
            for (cid, reply) in std::mem::take(&mut cluster.client_replies) {
                if cid == client.id() && client.on_reply(reply).is_some() {
                    completed = true;
                }
            }
            if completed {
                break;
            }
        }
        prop_assert!(completed, "operation must commit after the leader crash");
        for id in (0..4).filter(|&id| id != leader) {
            prop_assert!(
                cluster.replica(id).view() > view_before,
                "replica {} must leave the crashed leader's view", id
            );
            prop_assert!(cluster.replica(id).last_decided() >= SeqNo(pre_ops as u64 + 1));
        }
    }

    #[test]
    fn consensus_agreement_under_any_schedule(seed in 0u64..10_000) {
        let mut cluster = TestCluster::new(4, 5);
        cluster.randomize_delivery(seed);
        let mut client = Client::new(ClientId(1), cluster.membership(), TEST_SECRET);
        for i in 0..5u32 {
            let reply = cluster.run_client_op(&mut client, &i.to_be_bytes());
            prop_assert_eq!(&reply[..], &i.to_be_bytes());
        }
        let reference = cluster.replica(0).service().snapshot();
        for id in 1..4 {
            prop_assert_eq!(cluster.replica(id).service().snapshot(), reference.clone());
        }
    }
}

// ---------------------------------------------------------------------
// Zero-copy hot path: memoized batch digests and serialize-once broadcast
// ---------------------------------------------------------------------

proptest! {
    /// The memoized `Batch::digest()` equals a fresh recomputation from the
    /// request digests, before and after clones, and regardless of which
    /// handle (original or clone) forced the computation.
    #[test]
    fn batch_digest_memo_matches_fresh(
        ops in proptest::collection::vec(0u64..1_000, 0..6),
        payload in proptest::collection::vec(0u8..=255u8, 0..48),
    ) {
        use bytes::Bytes;
        use lazarus::bft::crypto::{AuthTag, Digest};
        use lazarus::bft::messages::{Batch, Request};

        let requests: Vec<Request> = ops
            .iter()
            .map(|&op| Request {
                client: ClientId(op % 7),
                op,
                payload: Bytes::copy_from_slice(&payload),
                tag: AuthTag([op as u8; 32]),
            })
            .collect();

        // Fresh recomputation, straight from the definition.
        let digests: Vec<[u8; 32]> = requests.iter().map(|r| r.digest().0).collect();
        let parts: Vec<&[u8]> = digests.iter().map(|d| d.as_slice()).collect();
        let fresh = Digest::of_parts(&parts);

        let batch = Batch::new(requests.clone());
        let clone_before = batch.clone(); // clone made before the memo fills
        prop_assert_eq!(batch.digest(), fresh);
        let clone_after = batch.clone(); // clone made after the memo fills
        prop_assert_eq!(clone_before.digest(), fresh);
        prop_assert_eq!(clone_after.digest(), fresh);
        // A structurally equal but independently allocated batch agrees.
        prop_assert_eq!(Batch::new(requests).digest(), fresh);
    }
}

/// `Action::Broadcast` is behaviourally identical to the per-peer
/// `Action::Send` loop it replaced: expanding each broadcast into per-peer
/// sends yields the same delivery set, the same per-peer `wire_size`
/// accounting, the same client replies, and the same converged state.
#[test]
fn broadcast_equivalent_to_per_peer_send() {
    use lazarus::bft::messages::Message;
    use lazarus::bft::replica::{Action, Ctx, Replica, ReplicaConfig};
    use lazarus::bft::service::CounterService;
    use lazarus::bft::types::{Epoch, Membership, ReplicaId};
    use std::collections::VecDeque;
    use std::sync::Arc;

    /// A FIFO pump that either expands broadcasts into per-peer sends (the
    /// legacy behaviour) or delivers the shared message per peer directly.
    struct Pump {
        replicas: Vec<Replica<CounterService>>,
        queue: VecDeque<(ReplicaId, Arc<Message>)>,
        expand_broadcasts: bool,
        /// Every delivery as `(to, wire_size)` — the accounting trace.
        deliveries: Vec<(ReplicaId, usize)>,
        replies: Vec<(ClientId, lazarus::bft::messages::Reply)>,
    }

    impl Pump {
        fn new(n: u32, expand_broadcasts: bool) -> Pump {
            let membership = Membership::new(Epoch(0), (0..n).map(ReplicaId).collect());
            let replicas = (0..n)
                .map(|id| {
                    let cfg = ReplicaConfig::new(ReplicaId(id), membership.clone());
                    Replica::new(cfg, CounterService::new()).0
                })
                .collect();
            Pump {
                replicas,
                queue: VecDeque::new(),
                expand_broadcasts,
                deliveries: Vec::new(),
                replies: Vec::new(),
            }
        }

        fn absorb(&mut self, actions: Vec<Action>) {
            for action in actions {
                match action {
                    Action::Send(to, m) => self.queue.push_back((to, Arc::new(m))),
                    Action::Broadcast(peers, m) => {
                        for to in peers {
                            let entry = if self.expand_broadcasts {
                                // Legacy per-peer deep-clone loop.
                                Arc::new((*m).clone())
                            } else {
                                // Zero-copy path: every peer shares the
                                // one allocation.
                                Arc::clone(&m)
                            };
                            self.queue.push_back((to, entry));
                        }
                    }
                    Action::SendClient(c, r) => self.replies.push((c, r)),
                    _ => {}
                }
            }
        }

        fn run(&mut self) {
            let mut steps = 0;
            while let Some((to, message)) = self.queue.pop_front() {
                steps += 1;
                assert!(steps < 1_000_000, "no quiescence");
                self.deliveries.push((to, message.wire_size()));
                let message = Arc::try_unwrap(message).unwrap_or_else(|m| (*m).clone());
                let actions = self.replicas[to.0 as usize].on_message(message, Ctx::UNTRACED);
                self.absorb(actions);
            }
        }
    }

    let mut shared = Pump::new(4, false);
    let mut expanded = Pump::new(4, true);
    for pump in [&mut shared, &mut expanded] {
        let mut client =
            Client::new(ClientId(9), pump.replicas[0].membership().clone(), TEST_SECRET);
        for i in 0..6u32 {
            for (to, m) in client.invoke(bytes::Bytes::copy_from_slice(&i.to_be_bytes())) {
                pump.queue.push_back((to, Arc::new(m)));
            }
            pump.run();
            for (cid, reply) in std::mem::take(&mut pump.replies) {
                if cid == client.id() {
                    let _ = client.on_reply(reply);
                }
            }
        }
    }

    // Same per-peer delivery set and wire accounting, same converged state.
    assert_eq!(shared.deliveries, expanded.deliveries);
    for (a, b) in shared.replicas.iter().zip(&expanded.replicas) {
        assert_eq!(a.service().snapshot(), b.service().snapshot());
    }
}
