//! End-to-end integration: OSINT world → collection pipeline → controller →
//! execution plane.
//!
//! These tests span every workspace crate: the synthetic world is rendered
//! to real feed/advisory documents, parsed back by the data manager, risk
//! is assessed by the controller, and its deployment plans are applied to a
//! simulated BFT cluster that keeps serving a replicated KVS throughout.

use lazarus::apps::kvs::{KvsOp, KvsService};
use lazarus::bft::types::{Epoch, Membership, ReplicaId};
use lazarus::core::controller::{Controller, ControllerConfig};
use lazarus::core::DeploymentStep;
use lazarus::osint::catalog::study_oses;
use lazarus::osint::datamgr::DataManager;
use lazarus::osint::date::Date;
use lazarus::osint::kb::KnowledgeBase;
use lazarus::osint::sources::{ExploitDbSource, OsintSource, UbuntuSource};
use lazarus::osint::synth::{SyntheticWorld, WorldConfig};
use lazarus::testbed::cluster::{SimCluster, SimConfig};
use lazarus::testbed::oscatalog::vm_profile;
use lazarus::testbed::sim::SEC;

use bytes::Bytes;

fn small_world(seed: u64) -> SyntheticWorld {
    let mut cfg = WorldConfig::paper_study(seed);
    cfg.start = Date::from_ymd(2017, 6, 1);
    cfg.end = Date::from_ymd(2018, 2, 1);
    SyntheticWorld::generate(cfg)
}

/// The full collection pipeline: generated documents → parsers → KB.
#[test]
fn osint_pipeline_feeds_the_controller() {
    let world = small_world(31);
    let data = DataManager::new(KnowledgeBase::new());
    data.sync_feeds(&world.nvd_feeds()).expect("feeds parse");
    let docs = world.vendor_documents();
    let exploitdb = ExploitDbSource::new(world.exploitdb_document());
    let ubuntu = UbuntuSource::new(docs.ubuntu);
    let sources: Vec<&(dyn OsintSource + Sync)> = vec![&exploitdb, &ubuntu];
    data.sync_sources(&sources, Date::from_ymd(2017, 6, 1)).expect("sources parse");
    assert_eq!(data.read(|kb| kb.len()), world.vulnerabilities.len());

    let mut controller = Controller::new(ControllerConfig::new(study_oses()), data);
    let report = controller.bootstrap(Date::from_ymd(2018, 1, 1));
    assert_eq!(controller.active_config().len(), 4);
    assert!(report.config_risk <= report.threshold);
}

/// Controller decisions stay coherent over a long horizon: the partition
/// invariant holds, deployments track the CONFIG, and risk stays at or
/// below the adaptive threshold except on exhausted rounds.
#[test]
fn month_of_monitoring_rounds_keeps_invariants() {
    let world = small_world(32);
    let kb: KnowledgeBase = world.vulnerabilities.into_iter().collect();
    let mut cfg = ControllerConfig::new(study_oses());
    cfg.slack = 8.0;
    let mut controller = Controller::new(cfg, DataManager::new(kb));
    controller.bootstrap(Date::from_ymd(2018, 1, 1));
    for day in 2..=31 {
        let report = controller.monitor_round(Date::from_ymd(2018, 1, day));
        let sets = controller.sets().expect("bootstrapped");
        assert!(sets.is_partition(), "day {day}");
        assert_eq!(sets.config.len(), 4, "day {day}");
        let mut deployed: Vec<_> = controller.deploy().active().iter().map(|d| d.os).collect();
        let mut active = controller.active_config();
        deployed.sort();
        active.sort();
        assert_eq!(deployed, active, "day {day}");
        // plans always follow add-then-remove
        let add = report.plan.iter().position(|s| matches!(s, DeploymentStep::AddReplica { .. }));
        let rm = report.plan.iter().position(|s| matches!(s, DeploymentStep::RemoveReplica { .. }));
        if let (Some(a), Some(r)) = (add, rm) {
            assert!(a < r, "day {day}: add must precede remove");
        }
    }
}

/// A controller-planned rotation applied to a live simulated cluster: the
/// KVS keeps serving and the joiner converges to the same state.
#[test]
fn controller_plan_applies_to_simulated_cluster() {
    let membership = Membership::new(Epoch(0), (0..4).map(ReplicaId).collect());
    let oses = lazarus::testbed::oscatalog::reconfig_set();
    let mut sim = SimCluster::new(SimConfig::default());
    for (i, os) in oses.iter().enumerate() {
        sim.add_node(
            ReplicaId(i as u32),
            vm_profile(*os),
            membership.clone(),
            Box::new(KvsService::new()),
        );
    }
    // a steady stream of writes
    sim.add_clients(1, 2, membership.clone(), |op| {
        KvsOp::Put { key: (op % 64).to_be_bytes().to_vec(), value: vec![0xEE; 128] }.encode()
    });

    // Execute a swap plan: UB16 joins (boots), OS42 (r1) leaves.
    let mut ub16 = lazarus::testbed::oscatalog::by_short_id("UB16").unwrap().profile;
    ub16.boot = 5 * SEC; // keep the debug-mode test quick
    let joined = membership.reconfigured(Some(ReplicaId(4)), None);
    sim.boot_joiner_at(2 * SEC, ReplicaId(4), ub16, joined, Box::new(KvsService::new()));
    sim.inject_reconfig_at(10 * SEC, Epoch(0), Some(ReplicaId(4)), None);
    sim.inject_reconfig_at(20 * SEC, Epoch(1), None, Some(ReplicaId(1)));
    sim.power_off_at(23 * SEC, ReplicaId(1));
    sim.run_until(35 * SEC);

    // Both epochs happened.
    let epochs: std::collections::HashSet<_> =
        sim.epoch_changes.iter().map(|(_, m)| m.epoch).collect();
    assert!(epochs.contains(&Epoch(1)), "add executed");
    assert!(epochs.contains(&Epoch(2)), "remove executed");
    // The joiner transferred state.
    assert!(sim.transfers.iter().any(|(_, r)| *r == ReplicaId(4)));
    // Clients made progress the whole time.
    assert!(sim.metrics.throughput(25 * SEC, 35 * SEC) > 0.0, "post-rotation progress");
    // Survivors and the joiner agree on the service state.
    let reference = sim.replica(ReplicaId(0)).service().snapshot();
    // (replicas may be a slot or two apart; compare after quiescence window)
    let last0 = sim.replica(ReplicaId(0)).last_decided();
    for r in [2u32, 3, 4] {
        let replica = sim.replica(ReplicaId(r));
        if replica.last_decided() == last0 {
            assert_eq!(replica.service().snapshot(), reference, "replica {r} diverged");
        }
    }
    let _ = Bytes::new();
}

/// The §6 evaluation engine ranks strategies the way the paper reports.
#[test]
fn strategy_ranking_matches_paper_shape() {
    use lazarus::risk::epoch::{EpochConfig, Evaluator, ThreatScope};
    use lazarus::risk::strategies::StrategyKind;
    let world = small_world(33);
    let eval = Evaluator::new(&world, EpochConfig::paper());
    let window = (Date::from_ymd(2018, 1, 1), Date::from_ymd(2018, 2, 1));
    let pct = |kind| {
        eval.run_window(kind, window, &ThreatScope::PublishedInWindow, 120, 5).compromised_pct()
    };
    let lazarus = pct(StrategyKind::Lazarus);
    let random = pct(StrategyKind::Random);
    let equal = pct(StrategyKind::Equal);
    assert!(
        lazarus <= random && lazarus <= equal,
        "lazarus {lazarus}% vs random {random}% / equal {equal}%"
    );
}
