//! Cross-crate BFT safety and recovery tests: agreement under adversarial
//! schedules, leader failure, and reconfiguration with real application
//! services on top.

use bytes::Bytes;
use lazarus::apps::kvs::{KvsOp, KvsService};
use lazarus::apps::sieveq::{dequeue_op, enqueue_op, SieveQService};
use lazarus::bft::client::Client;
use lazarus::bft::messages::Message;
use lazarus::bft::replica::{Action, Ctx, Replica, ReplicaConfig, TimerId};
use lazarus::bft::testkit::{TestCluster, TEST_SECRET};
use lazarus::bft::types::{ClientId, Epoch, Membership, ReplicaId};
use lazarus::bft::Service;

use std::collections::VecDeque;

/// A generic synchronous pump over any `Service` (the testkit is
/// specialized to the counter service).
struct Pump<S: Service> {
    replicas: Vec<Replica<S>>,
    queue: VecDeque<(ReplicaId, Message)>,
    replies: Vec<(ClientId, lazarus::bft::messages::Reply)>,
}

impl<S: Service> Pump<S> {
    fn new(n: u32, mut make: impl FnMut() -> S) -> Pump<S> {
        let membership = Membership::new(Epoch(0), (0..n).map(ReplicaId).collect());
        let replicas = (0..n)
            .map(|id| {
                let cfg = ReplicaConfig::new(ReplicaId(id), membership.clone());
                Replica::new(cfg, make()).0
            })
            .collect();
        Pump { replicas, queue: VecDeque::new(), replies: Vec::new() }
    }

    fn membership(&self) -> Membership {
        self.replicas[0].membership().clone()
    }

    fn invoke(&mut self, client: &mut Client, payload: Bytes) -> Bytes {
        for (to, m) in client.invoke(payload) {
            self.queue.push_back((to, m));
        }
        self.run();
        let mut out = None;
        for (cid, reply) in std::mem::take(&mut self.replies) {
            if cid == client.id() {
                if let Some(done) = client.on_reply(reply) {
                    out = Some(done.result);
                }
            }
        }
        out.expect("operation completes")
    }

    fn run(&mut self) {
        let mut steps = 0;
        while let Some((to, message)) = self.queue.pop_front() {
            steps += 1;
            assert!(steps < 1_000_000, "no quiescence");
            let actions = self.replicas[to.0 as usize].on_message(message, Ctx::UNTRACED);
            for action in actions {
                match action {
                    Action::Send(peer, m) => self.queue.push_back((peer, m)),
                    Action::Broadcast(peers, m) => {
                        for peer in peers {
                            self.queue.push_back((peer, (*m).clone()));
                        }
                    }
                    Action::SendClient(c, r) => self.replies.push((c, r)),
                    _ => {}
                }
            }
        }
    }
}

#[test]
fn kvs_linearizes_across_clients() {
    let mut pump = Pump::new(4, KvsService::new);
    let membership = pump.membership();
    let mut alice = Client::new(ClientId(1), membership.clone(), TEST_SECRET);
    let mut bob = Client::new(ClientId(2), membership, TEST_SECRET);

    let put = |k: &[u8], v: &[u8]| KvsOp::Put { key: k.to_vec(), value: v.to_vec() }.encode();
    let get = |k: &[u8]| KvsOp::Get { key: k.to_vec() }.encode();

    assert_eq!(&pump.invoke(&mut alice, put(b"x", b"1"))[..], b"OK:new");
    assert_eq!(&pump.invoke(&mut bob, put(b"x", b"2"))[..], b"OK:replaced");
    assert_eq!(&pump.invoke(&mut alice, get(b"x"))[..], b"2");
    // all replicas converged on the same state
    let reference = pump.replicas[0].service().snapshot();
    for r in &pump.replicas {
        assert_eq!(r.service().snapshot(), reference);
    }
}

#[test]
fn sieveq_preserves_fifo_across_replicas() {
    let mut pump = Pump::new(4, SieveQService::new);
    let membership = pump.membership();
    let mut producer = Client::new(ClientId(1), membership.clone(), TEST_SECRET);
    let mut consumer = Client::new(ClientId(2), membership, TEST_SECRET);
    for i in 0..5u32 {
        pump.invoke(&mut producer, enqueue_op(format!("msg-{i}").as_bytes()));
    }
    for i in 0..5u32 {
        let got = pump.invoke(&mut consumer, dequeue_op());
        assert_eq!(got, Bytes::from(format!("msg-{i}")));
    }
    assert_eq!(&pump.invoke(&mut consumer, dequeue_op())[..], b"ERR:empty");
}

#[test]
fn agreement_under_randomized_schedules_with_checkpoints() {
    for seed in 0..6 {
        let mut cluster = TestCluster::new(4, 3);
        cluster.randomize_delivery(seed);
        let mut c1 = Client::new(ClientId(1), cluster.membership(), TEST_SECRET);
        let mut c2 = Client::new(ClientId(2), cluster.membership(), TEST_SECRET);
        for i in 0..6u32 {
            let r = cluster.run_client_op(&mut c1, format!("a{i}").as_bytes());
            assert_eq!(&r[..], format!("a{i}").as_bytes());
            let r = cluster.run_client_op(&mut c2, format!("b{i}").as_bytes());
            assert_eq!(&r[..], format!("b{i}").as_bytes());
        }
        // agreement
        let reference = cluster.replica(0).service().snapshot();
        for id in 1..4 {
            assert_eq!(cluster.replica(id).service().snapshot(), reference, "seed {seed}");
        }
        // checkpoints advanced and trimmed the log
        assert!(cluster.replica(0).decided_log().stable_checkpoint().seq.0 >= 9);
    }
}

#[test]
fn progress_resumes_after_two_leader_failures() {
    let mut cluster = TestCluster::new(7, 1000); // f = 2
    let mut client = Client::new(ClientId(1), cluster.membership(), TEST_SECRET);
    cluster.run_client_op(&mut client, b"warm");
    // Crash the leaders of views 0 and 1.
    cluster.crash(0);
    cluster.crash(1);
    for (to, m) in client.invoke(Bytes::from_static(b"after crashes")) {
        cluster.inject(to, m);
    }
    cluster.run_to_quiescence();
    // Two rounds of watchdog escalation per view change.
    for _ in 0..4 {
        cluster.fire_timers(TimerId::Request);
        cluster.run_to_quiescence();
    }
    let mut done = false;
    for (cid, reply) in std::mem::take(&mut cluster.client_replies) {
        if cid == client.id() && client.on_reply(reply).is_some() {
            done = true;
        }
    }
    assert!(done, "must complete under the view-2 leader");
    for id in 2..7 {
        assert_eq!(cluster.replica(id).service().executed(), 2, "replica {id}");
    }
}
