//! Property-based tests over the health pipeline's rolling-window fold and
//! eviction (proptest): the edge cases the streaming aggregation must get
//! right — empty windows, single samples, exact window-boundary eviction,
//! count conservation inside one window span, the monotone clock clamp,
//! and quantile monotonicity.

use proptest::prelude::*;

use lazarus_obs::{bucket_bound, bucket_index, RollingWindow};

proptest! {
    /// A window that never saw a sample folds to the empty stats: zero
    /// count and sum, no quantile, no mean — for any geometry, including
    /// the degenerate clamps (`bucket_us = 0`, `window_us < bucket_us`).
    #[test]
    fn empty_window_folds_to_nothing(window_us in 0u64..2_000_000, bucket_us in 0u64..300_000) {
        let w = RollingWindow::new(window_us, bucket_us);
        let stats = w.fold();
        prop_assert_eq!(stats.count, 0);
        prop_assert_eq!(stats.sum, 0);
        prop_assert_eq!(stats.quantile_permille(500), None);
        prop_assert_eq!(stats.quantile_permille(1000), None);
        prop_assert_eq!(stats.mean(), None);
        prop_assert!(w.window_us() >= 1, "the ring never collapses to zero span");
    }

    /// One sample: every quantile lands on that sample's histogram bucket
    /// bound, the mean is exact, and the fold conserves count and sum.
    #[test]
    fn single_sample_owns_every_quantile(
        at_us in 0u64..10_000_000,
        value in 0u64..50_000_000,
        q_permille in 0u64..1001,
    ) {
        let mut w = RollingWindow::new(500_000, 100_000);
        w.observe(at_us, value);
        let stats = w.fold();
        prop_assert_eq!(stats.count, 1);
        prop_assert_eq!(stats.sum, value);
        prop_assert_eq!(stats.mean(), Some(value));
        let bound = bucket_bound(bucket_index(value));
        prop_assert_eq!(stats.quantile_permille(q_permille), Some(bound));
        prop_assert!(bound >= value, "a bucket bound is an upper bound");
    }

    /// Exact boundary eviction: a sample is still in the fold after
    /// advancing to the last instant of its window (`t + window - bucket`
    /// lands in the final retained bucket) and gone one bucket later, when
    /// the eviction horizon reaches exactly `t + window`.
    #[test]
    fn exact_window_boundary_evicts(
        t in 0u64..5_000_000,
        value in 1u64..1_000_000,
        len in 1u64..12,
        bucket_us in 1u64..200_000,
    ) {
        let window_us = len * bucket_us;
        let mut w = RollingWindow::new(window_us, bucket_us);
        prop_assert_eq!(w.window_us(), window_us);
        w.observe(t, value);
        w.advance_to(t + window_us - bucket_us);
        let kept = w.fold();
        prop_assert_eq!(kept.count, 1, "inside the window span the sample survives");
        prop_assert_eq!(kept.sum, value);
        w.advance_to(t + window_us);
        let evicted = w.fold();
        prop_assert_eq!(evicted.count, 0, "at exactly one window span the sample is evicted");
        prop_assert_eq!(evicted.sum, 0);
    }

    /// Count conservation: samples at non-decreasing offsets inside one
    /// window span (bucket-aligned base, offsets `<= window - bucket`) are
    /// all retained — the fold's count and sum equal the totals observed,
    /// and the quantiles are monotone in `q` with p100 bounding the max.
    #[test]
    fn in_window_samples_are_conserved(
        base_bucket in 0u64..1_000,
        offsets in proptest::collection::vec(0u64..400_001, 1..40),
        values in proptest::collection::vec(0u64..100_000, 40usize),
    ) {
        let (window_us, bucket_us) = (500_000u64, 100_000u64);
        let base = base_bucket * bucket_us;
        let mut offsets = offsets;
        offsets.sort_unstable();
        let mut w = RollingWindow::new(window_us, bucket_us);
        let mut expected_sum = 0u64;
        let mut max_value = 0u64;
        for (i, &off) in offsets.iter().enumerate() {
            let value = values[i];
            w.observe(base + off, value);
            expected_sum += value;
            max_value = max_value.max(value);
        }
        let stats = w.fold();
        prop_assert_eq!(stats.count, offsets.len() as u64, "no in-window sample is evicted");
        prop_assert_eq!(stats.sum, expected_sum);
        let p50 = stats.quantile_permille(500);
        let p99 = stats.quantile_permille(990);
        let p100 = stats.quantile_permille(1000);
        prop_assert!(p50 <= p99 && p99 <= p100, "quantiles are monotone: {p50:?} {p99:?} {p100:?}");
        prop_assert!(p100 >= Some(max_value), "p100 bounds the largest sample");
        prop_assert!(stats.mean() <= Some(max_value.max(1)), "the mean never exceeds the max");
    }

    /// The monotone clock clamp: a stale producer observing *earlier* than
    /// the head neither panics nor corrupts the ring — the late sample
    /// joins the newest bucket and the fold still counts it. A jump far
    /// beyond the window clears everything.
    #[test]
    fn stale_observes_clamp_and_far_jumps_clear(
        t in 500_000u64..5_000_000,
        back in 0u64..5_000_000,
        jump in 0u64..3_000_000,
    ) {
        let window_us = 500_000u64;
        let mut w = RollingWindow::new(window_us, 100_000);
        w.observe(t, 7);
        w.observe(t.saturating_sub(back), 9);
        let stats = w.fold();
        prop_assert_eq!(stats.count, 2, "the late sample is clamped into the head bucket");
        prop_assert_eq!(stats.sum, 16);
        let idx_before = w.advance_to(0);
        prop_assert_eq!(idx_before, w.advance_to(0), "advance_to is idempotent backwards");
        w.advance_to(t + window_us + jump);
        prop_assert_eq!(w.fold().count, 0, "a jump past the whole window evicts everything");
    }
}
