//! Window-equivalence properties: a pipelined consensus window (W > 1)
//! must decide exactly the same client operations, with the same agreed
//! results and the same final service state, as the classic one-slot
//! pipeline (W = 1) — under seeded drop/delay/dup/reorder link faults.
//!
//! Each run drives a *fixed finite workload* (C pipelined clients × N ops
//! each) over a 4-replica [`TestCluster`] with seeded chaos links and a
//! seeded-random delivery schedule, retransmitting and firing `Request`
//! watchdogs in rounds like a real client until every operation completes.
//! The chaos heals after a fixed number of rounds so the run always
//! converges; view changes triggered while the links were faulty still
//! have to re-propose any abandoned window slots.
//!
//! What is compared across windows: the set of decided `(client, op)`
//! pairs, their agreed results, and the final executed-op counter. What is
//! *not* compared across windows is the cross-client interleaving — batch
//! boundaries legitimately differ with the window size, so any total order
//! is correct SMR; within one run, however, every replica that executed
//! the full workload must have executed it in the identical order.

use std::collections::BTreeMap;

use bytes::Bytes;
use proptest::prelude::*;

use lazarus::bft::client::Client;
use lazarus::bft::replica::{Status, TimerId};
use lazarus::bft::testkit::{TestCluster, TEST_SECRET};
use lazarus::bft::types::ClientId;

const REPLICAS: u32 = 4;
/// Rounds with faulty links before they heal.
const CHAOS_ROUNDS: usize = 10;
/// Total retransmission/watchdog rounds before the run is declared stuck.
const MAX_ROUNDS: usize = 60;

/// Deterministic payload for `(client, op)` — the echo service replies with
/// it verbatim, so result comparison doubles as a payload-integrity check.
fn payload(client: u64, op: u64) -> Bytes {
    Bytes::copy_from_slice(&(client * 1_000_003 + op).to_be_bytes())
}

struct RunOutcome {
    /// Agreed result per completed `(client, op)`.
    results: BTreeMap<(u64, u64), Bytes>,
    /// Final executed-op counter per replica.
    executed: Vec<u64>,
    /// Execution order (first reply emission) per replica that executed the
    /// complete workload itself (replicas that caught up via state transfer
    /// skip execution and are excluded).
    full_sequences: Vec<Vec<(u64, u64)>>,
}

fn drain_replies(
    cluster: &mut TestCluster,
    clients: &mut [(Client, u64)],
    results: &mut BTreeMap<(u64, u64), Bytes>,
) {
    for (cid, reply) in std::mem::take(&mut cluster.client_replies) {
        if let Some((client, _)) = clients.iter_mut().find(|(c, _)| c.id() == cid) {
            if let Some(done) = client.on_reply(reply) {
                results.insert((cid.0, done.op), done.result);
            }
        }
    }
}

/// Drives `num_clients × ops_per_client` operations to completion at the
/// given window size under seeded faults, and returns what was decided.
fn run_fixed_workload(window: u64, seed: u64, num_clients: u64, ops_per_client: u64) -> RunOutcome {
    let mut cluster = TestCluster::new_windowed(REPLICAS, 100, window);
    cluster.randomize_delivery(seed);
    // ~5% drop, 10% delay, 5% dup on every link until the chaos heals.
    cluster.chaos_links(seed ^ 0x9e37_79b9_7f4a_7c15, 0.05, 0.10, 0.05);
    let membership = cluster.membership();
    // Pipelined clients (depth 3) keep several ops outstanding at once, so
    // windows > 1 genuinely fill multiple slots.
    let mut clients: Vec<(Client, u64)> = (0..num_clients)
        .map(|c| (Client::pipelined(ClientId(c + 1), membership.clone(), TEST_SECRET, 3), 0u64))
        .collect();
    let target = (num_clients * ops_per_client) as usize;
    let mut results = BTreeMap::new();

    for round in 0..MAX_ROUNDS {
        if round == CHAOS_ROUNDS {
            cluster.heal_links();
        }
        for (client, issued) in clients.iter_mut() {
            while *issued < ops_per_client && client.can_invoke() {
                *issued += 1;
                for (to, m) in client.invoke(payload(client.id().0, *issued)) {
                    cluster.inject(to, m);
                }
            }
            for (to, m) in client.retransmit() {
                cluster.inject(to, m);
            }
        }
        cluster.run_to_quiescence();
        drain_replies(&mut cluster, &mut clients, &mut results);
        if results.len() == target {
            break;
        }
        cluster.fire_timers(TimerId::Request);
        cluster.run_to_quiescence();
        // Stragglers stuck waiting for a SYNC or mid state transfer need
        // their watchdogs too (the simulator fires these automatically; the
        // synchronous pump leaves timers to the driver).
        cluster.fire_timers(TimerId::Sync);
        cluster.fire_timers(TimerId::Cst);
        cluster.run_to_quiescence();
        drain_replies(&mut cluster, &mut clients, &mut results);
        if results.len() == target {
            break;
        }
    }

    assert_eq!(
        results.len(),
        target,
        "window {window} seed {seed}: workload did not complete within {MAX_ROUNDS} rounds"
    );

    // Heal rounds: give stragglers their retry timers so every replica can
    // finish catching up before final-state comparison.
    for _ in 0..5 {
        cluster.fire_timers(TimerId::Request);
        cluster.fire_timers(TimerId::Sync);
        cluster.fire_timers(TimerId::Cst);
        cluster.run_to_quiescence();
    }
    drain_replies(&mut cluster, &mut clients, &mut results);

    let executed: Vec<u64> =
        (0..REPLICAS).map(|id| cluster.replica(id).service().executed()).collect();
    // Replicas that agree on the decided prefix must agree on the state it
    // produces — catching rollback divergence (e.g. a state transfer
    // installing a snapshot without resetting the at-most-once ledger).
    let max_ld = (0..REPLICAS).map(|id| cluster.replica(id).last_decided()).max().unwrap();
    let synced: Vec<u64> = (0..REPLICAS)
        .filter(|&id| {
            cluster.replica(id).status() == Status::Active
                && cluster.replica(id).last_decided() == max_ld
        })
        .map(|id| cluster.replica(id).service().executed())
        .collect();
    for &count in &synced {
        assert_eq!(
            count, synced[0],
            "window {window} seed {seed}: replicas at {max_ld:?} diverge on state"
        );
    }
    // First reply emission per (replica, client, op) marks the execution
    // point; later emissions are cached at-most-once resends.
    let mut full_sequences = Vec::new();
    for id in 0..REPLICAS {
        let mut seen = BTreeMap::new();
        let mut order = Vec::new();
        for &(from, client, op) in &cluster.reply_log {
            if from.0 == id && seen.insert((client.0, op), ()).is_none() {
                order.push((client.0, op));
            }
        }
        if order.len() == target {
            full_sequences.push(order);
        }
    }
    RunOutcome { results, executed, full_sequences }
}

fn check_equivalence(seed: u64, num_clients: u64, ops_per_client: u64) {
    let target = num_clients * ops_per_client;
    let base = run_fixed_workload(1, seed, num_clients, ops_per_client);
    assert_eq!(base.executed.iter().max(), Some(&target));
    for window in [2u64, 4, 8] {
        let run = run_fixed_workload(window, seed, num_clients, ops_per_client);
        // Same decided operations with the same agreed results as W = 1.
        assert_eq!(run.results, base.results, "window {window} seed {seed}: decided set differs");
        // Same final state: the counter only reaches `target` if every op
        // executed exactly once; exceeding it anywhere is double execution.
        assert_eq!(run.executed.iter().max(), Some(&target), "window {window} seed {seed}");
        for (id, &count) in run.executed.iter().enumerate() {
            assert!(
                count <= target,
                "window {window} seed {seed}: replica {id} double-executed ({count} > {target})"
            );
        }
        // Within the run, all replicas that executed the full workload agree
        // on the execution order (the decided sequence is one total order).
        for pair in run.full_sequences.windows(2) {
            assert_eq!(pair[0], pair[1], "window {window} seed {seed}: replicas diverge on order");
        }
    }
}

/// Fixed-seed smoke across the window sweep — deterministic in CI.
#[test]
fn window_equivalence_fixed_seeds() {
    for seed in [3, 7, 1912] {
        check_equivalence(seed, 3, 5);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// For arbitrary fault seeds and workload shapes, every pipelined
    /// window decides the same operations with the same results and final
    /// state as the one-slot pipeline.
    #[test]
    fn window_matches_single_slot_pipeline(
        seed in 0u64..10_000,
        num_clients in 1u64..4,
        ops_per_client in 3u64..7,
    ) {
        check_equivalence(seed, num_clients, ops_per_client);
    }
}
