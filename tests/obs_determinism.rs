//! Cross-thread-count determinism of the observability registry.
//!
//! The contract (DESIGN.md "Observability"): every metric recorded during a
//! fixed-seed evaluation is a pure function of the seed, regardless of how
//! many worker threads `LAZARUS_THREADS` fans the runs across. This is what
//! makes `fig5_metrics.json` byte-comparable in ci.sh.

use lazarus_obs::Obs;
use lazarus_osint::date::Date;
use lazarus_osint::synth::{SyntheticWorld, WorldConfig};
use lazarus_risk::epoch::{EpochConfig, Evaluator, ThreatScope};
use lazarus_risk::strategies::StrategyKind;

fn snapshot_with_threads(threads: &str) -> String {
    // Serial with respect to the other call sites in this test binary: the
    // env var is process-global, so the two runs happen back to back.
    std::env::set_var("LAZARUS_THREADS", threads);
    let world = SyntheticWorld::generate(WorldConfig::paper_study(42));
    let eval = Evaluator::new(&world, EpochConfig::paper());
    let obs = Obs::unclocked();
    let window = (Date::from_ymd(2018, 1, 1), Date::from_ymd(2018, 2, 1));
    for kind in [StrategyKind::Lazarus, StrategyKind::Random] {
        let stats = eval.run_window_observed(
            kind,
            window,
            &ThreatScope::PublishedInWindow,
            24,
            42,
            Some(&obs),
        );
        obs.registry
            .gauge_with("fig5_compromised_pct", &[("month", "2018-01"), ("strategy", kind.name())])
            .set(100.0 * stats.compromised as f64 / stats.runs as f64);
    }
    std::env::remove_var("LAZARUS_THREADS");
    obs.registry.snapshot().to_prometheus()
}

#[test]
fn registry_snapshot_is_byte_identical_across_thread_counts() {
    let serial = snapshot_with_threads("1");
    let parallel = snapshot_with_threads("8");
    assert!(
        serial.contains("risk_runs_total"),
        "expected the evaluation to record run counters:\n{serial}"
    );
    assert!(
        serial.contains("risk_days_to_compromise"),
        "expected a days-to-compromise histogram:\n{serial}"
    );
    assert_eq!(serial, parallel, "registry snapshot must not depend on LAZARUS_THREADS");
}

fn health_with_threads(threads: &str) -> (String, String) {
    std::env::set_var("LAZARUS_THREADS", threads);
    let run = lazarus_testbed::nemesis::run_scenario_placed("mute", 1, 0);
    std::env::remove_var("LAZARUS_THREADS");
    (run.health.to_json(), run.snapshot.to_prometheus())
}

/// The same contract for the health pipeline: the final `ReplicaHealth`
/// reduction and the Prometheus rendering of a fixed-seed nemesis run are
/// pure functions of the seed — `LAZARUS_THREADS` must not leak into the
/// rolling-window folds, anomaly onsets, or label ordering. This is what
/// makes `fig_health_ablation`'s JSON byte-comparable in ci.sh.
#[test]
fn health_snapshot_is_byte_identical_across_thread_counts() {
    let (health_serial, prom_serial) = health_with_threads("1");
    let (health_parallel, prom_parallel) = health_with_threads("8");
    assert!(
        prom_serial.contains("lazarus_health_score"),
        "expected per-replica health gauges:\n{prom_serial}"
    );
    assert!(
        prom_serial.contains("health_anomalies_total{kind=\"silence\"}"),
        "a muted replica must trip the silence detector:\n{prom_serial}"
    );
    assert!(
        health_serial.contains("\"anomalies\":[\"silence\"]"),
        "the reduction names the anomaly:\n{health_serial}"
    );
    assert_eq!(health_serial, health_parallel, "health JSON must not depend on LAZARUS_THREADS");
    assert_eq!(prom_serial, prom_parallel, "health metrics must not depend on LAZARUS_THREADS");
}
